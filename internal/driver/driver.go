// Package driver is the closed-loop multi-client workload driver: N
// client goroutines issue the class's query mix against one shared,
// already-loaded engine and the driver reports throughput (queries per
// second) plus per-query latency percentiles. It is the concurrent
// counterpart of the single-stream cold-run harness in internal/bench —
// the paper measures one query at a time; this driver measures how the
// same engines behave when many clients hit the warm buffer pool at once.
//
// The loop is closed in the TPC-W sense: each client waits for its query
// to answer, then "thinks" for a fixed interval before issuing the next
// one. With think time well above service time, throughput scales with
// the client count until the engine saturates — which makes scaling
// visible even on a single-core host, where an open loop with zero think
// time saturates at one client.
//
// Determinism: client c of a run seeded S draws its query sequence from
// stats.NewRNG(S).Split(c+1), so the same (seed, clients, mix) triple
// replays the same per-client op sequence on any platform. OpSequence
// exposes the sequence for tests.
package driver

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xbench/internal/core"
	"xbench/internal/metrics"
	"xbench/internal/stats"
	"xbench/internal/workload"
)

// Config controls one driver run.
type Config struct {
	// Clients is the number of concurrent client goroutines; <= 0 selects 1.
	Clients int
	// OpsPerClient fixes the number of queries each client issues. When 0,
	// Duration bounds the run instead; when both are zero, OpsPerClient
	// defaults to 50.
	OpsPerClient int
	// Duration bounds the run by wall clock (ignored when OpsPerClient > 0).
	Duration time.Duration
	// Seed drives the per-client deterministic query mix; 0 selects 1.
	Seed uint64
	// Queries restricts the mix; nil selects every query the class defines
	// and the engine answers (probed during warmup).
	Queries []core.QueryID
	// NoWarmup skips the warmup pass. The mix is then used as given, and
	// the first measured ops run against a cold-ish pool.
	NoWarmup bool
	// Think is the per-client pause between queries (closed-loop think
	// time). 0 selects the 2ms default; < 0 disables thinking entirely.
	Think time.Duration
}

// WithDefaults resolves zero-value fields to their defaults.
func (c Config) WithDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.OpsPerClient <= 0 && c.Duration <= 0 {
		c.OpsPerClient = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch {
	case c.Think < 0:
		c.Think = 0
	case c.Think == 0:
		c.Think = 2 * time.Millisecond
	}
	return c
}

// CellStats is the latency summary of one query type in one run.
type CellStats struct {
	Query core.QueryID
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Report is the outcome of one driver run.
type Report struct {
	Engine  string
	Class   core.Class
	Clients int
	// Mix is the query types the clients drew from, in query order.
	Mix []core.QueryID
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// Ops and Errs count completed and failed queries across all clients.
	Ops  int64
	Errs int64
	// Throughput is Ops / Elapsed in queries per second.
	Throughput float64
	// Cells summarizes latency per query type, in query order.
	Cells []CellStats
	// ClientOps is the number of ops each client completed.
	ClientOps []int
}

// nextOp draws the next query of a client's mix. All mix randomness goes
// through here so OpSequence replays the client loop exactly.
func nextOp(rng *stats.RNG, mix []core.QueryID) core.QueryID {
	return mix[rng.Intn(len(mix))]
}

// clientRNG returns client c's dedicated stream for a run seeded seed.
func clientRNG(seed uint64, client int) *stats.RNG {
	return stats.NewRNG(seed).Split(uint64(client) + 1)
}

// OpSequence returns the first n queries client (0-based) would issue in
// a run with the given seed and mix. It is the driver's determinism
// contract, replayable without an engine.
func OpSequence(seed uint64, client int, mix []core.QueryID, n int) []core.QueryID {
	rng := clientRNG(seed, client)
	out := make([]core.QueryID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, nextOp(rng, mix))
	}
	return out
}

// warmup executes each candidate query once against the engine, returning
// the queries it actually answers (ErrNoQuery/ErrUnsupported candidates
// are dropped) with the side effect of warming the buffer pool. Any other
// error fails the run: a broken query would poison every measurement.
func warmup(ctx context.Context, e core.Engine, class core.Class, candidates []core.QueryID) ([]core.QueryID, error) {
	p := workload.Params(class)
	var mix []core.QueryID
	for _, q := range candidates {
		if _, err := e.Execute(ctx, q, p); err != nil {
			if core.IsNotAnswered(err) {
				continue
			}
			return nil, fmt.Errorf("driver: warmup %s: %w", q, err)
		}
		mix = append(mix, q)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("driver: engine %s answers no queries for %s", e.Name(), class)
	}
	return mix, nil
}

// Run drives cfg.Clients concurrent clients against a loaded engine and
// reports throughput and per-query latency. The engine must already be
// loaded and indexed; Run never calls Load or ColdReset, so the pool
// stays warm across a Sweep.
func Run(ctx context.Context, e core.Engine, class core.Class, cfg Config) (Report, error) {
	cfg = cfg.WithDefaults()
	rep := Report{Engine: e.Name(), Class: class, Clients: cfg.Clients}

	candidates := cfg.Queries
	if candidates == nil {
		candidates = workload.QueryIDs(class)
	}
	mix := candidates
	if !cfg.NoWarmup {
		var err error
		if mix, err = warmup(ctx, e, class, candidates); err != nil {
			return rep, err
		}
	}
	if len(mix) == 0 {
		return rep, fmt.Errorf("driver: empty query mix")
	}
	rep.Mix = mix

	hists := make(map[core.QueryID]*metrics.Histogram, len(mix))
	for _, q := range mix {
		hists[q] = metrics.NewHistogram()
	}
	params := workload.Params(class)

	var ops, errs atomic.Int64
	clientOps := make([]int, cfg.Clients)
	var errMu sync.Mutex
	var firstErr error

	deadline := time.Time{}
	if cfg.OpsPerClient <= 0 {
		deadline = time.Now().Add(cfg.Duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := clientRNG(cfg.Seed, client)
			for i := 0; ; i++ {
				if cfg.OpsPerClient > 0 {
					if i >= cfg.OpsPerClient {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				q := nextOp(rng, mix)
				t0 := time.Now()
				_, err := e.Execute(ctx, q, params)
				hists[q].Observe(time.Since(t0))
				ops.Add(1)
				clientOps[client]++
				if err != nil {
					errs.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
				if cfg.Think > 0 {
					time.Sleep(cfg.Think)
				}
			}
		}(c)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	rep.Ops = ops.Load()
	rep.Errs = errs.Load()
	rep.ClientOps = clientOps
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / rep.Elapsed.Seconds()
	}
	qs := append([]core.QueryID(nil), mix...)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		h := hists[q]
		rep.Cells = append(rep.Cells, CellStats{
			Query: q,
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.P50(),
			P95:   h.P95(),
			P99:   h.P99(),
		})
	}
	if firstErr != nil {
		return rep, fmt.Errorf("driver: %d/%d queries failed, first: %w", rep.Errs, rep.Ops, firstErr)
	}
	return rep, nil
}

// Sweep runs the driver once per client count over the same loaded engine
// (the pool stays warm across steps, so steps differ only in concurrency).
// It is how the scaling table of `xbench throughput` is produced.
func Sweep(ctx context.Context, e core.Engine, class core.Class, clientCounts []int, cfg Config) ([]Report, error) {
	var out []Report
	for _, n := range clientCounts {
		c := cfg
		c.Clients = n
		rep, err := Run(ctx, e, class, c)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
		// The first run warmed the pool and filtered the mix down to the
		// queries the engine answers; later steps must reuse that filtered
		// mix, not the raw candidate list.
		cfg.NoWarmup = true
		cfg.Queries = rep.Mix
	}
	return out, nil
}
