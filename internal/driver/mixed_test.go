package driver

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/workload"
)

func TestMixedOpSequenceDeterministic(t *testing.T) {
	a := MixedOpSequence(42, 0, testMix, nil, 0.3, 300)
	b := MixedOpSequence(42, 0, testMix, nil, 0.3, 300)
	if len(a) != 300 {
		t.Fatalf("sequence length %d", len(a))
	}
	var updates int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs on replay: %s vs %s", i, a[i], b[i])
		}
		if a[i].Update != 0 {
			updates++
		}
	}
	// 0.3 of 300 ops; a run this long drifting outside [45, 135] means
	// the fraction is not being honored.
	if updates < 45 || updates > 135 {
		t.Fatalf("%d/300 update ops for fraction 0.3", updates)
	}
	c := MixedOpSequence(42, 1, testMix, nil, 0.3, 300)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clients 0 and 1 drew identical mixed sequences")
	}
}

// TestMixedOpSequenceZeroFractionMatchesOpSequence pins backward
// compatibility: a zero update fraction consumes exactly the randomness
// the classic query-only stream does.
func TestMixedOpSequenceZeroFractionMatchesOpSequence(t *testing.T) {
	mixed := MixedOpSequence(7, 3, testMix, nil, 0, 100)
	plain := OpSequence(7, 3, testMix, 100)
	for i := range plain {
		if mixed[i].Update != 0 || mixed[i].Query != plain[i] {
			t.Fatalf("op %d: mixed %s, plain %s", i, mixed[i], plain[i])
		}
	}
}

func TestRunMixedAccounting(t *testing.T) {
	e := &stubEngine{}
	rep, err := Run(context.Background(), e, core.DCMD, Config{
		Clients: 2, OpsPerClient: 50, Queries: testMix, NoWarmup: true, Think: -1,
		UpdateFraction: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 100 {
		t.Fatalf("Ops = %d, want 100", rep.Ops)
	}
	if rep.Updates == 0 {
		t.Fatal("mixed run issued no updates")
	}
	var queries int64
	for _, c := range rep.Cells {
		queries += c.Count
	}
	var ucells int64
	for _, c := range rep.UpdateCells {
		ucells += c.Count
		if c.Op < workload.U1 || c.Op > workload.U3 {
			t.Fatalf("unexpected update cell op %v", c.Op)
		}
	}
	if queries+ucells != rep.Ops {
		t.Fatalf("cells account for %d+%d ops, report says %d", queries, ucells, rep.Ops)
	}
	if ucells != rep.Updates {
		t.Fatalf("update cells count %d, report says %d", ucells, rep.Updates)
	}
	if rep.NextUpdateSeq != int(rep.Updates) {
		t.Fatalf("NextUpdateSeq = %d after %d updates from base 0", rep.NextUpdateSeq, rep.Updates)
	}
}

func TestRunRejectsMixedOnSingleDocumentClass(t *testing.T) {
	e := &stubEngine{}
	_, err := Run(context.Background(), e, core.TCSD, Config{
		Clients: 1, OpsPerClient: 5, Queries: testMix, NoWarmup: true, Think: -1,
		UpdateFraction: 0.5,
	})
	if err == nil {
		t.Fatal("mixed run on a single-document class succeeded")
	}
}

func TestRunRejectsBadUpdateFraction(t *testing.T) {
	e := &stubEngine{}
	for _, f := range []float64{-0.1, 1, 1.5} {
		_, err := Run(context.Background(), e, core.DCMD, Config{
			Clients: 1, OpsPerClient: 5, Queries: testMix, NoWarmup: true, Think: -1,
			UpdateFraction: f,
		})
		if err == nil {
			t.Fatalf("update fraction %v accepted", f)
		}
	}
}

// TestSweepThreadsUpdateSeq: sweep steps reuse the warm engine, so U1
// sequence numbers must never repeat across steps — a reused name would
// fail the strict insert.
func TestSweepThreadsUpdateSeq(t *testing.T) {
	e := &stubEngine{}
	reports, err := Sweep(context.Background(), e, core.DCMD, []int{1, 2, 4}, Config{
		OpsPerClient: 30, Queries: testMix, Think: -1, UpdateFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, rep := range reports {
		if rep.Errs != 0 {
			t.Fatalf("%d clients: %d errors (duplicate insert names?)", rep.Clients, rep.Errs)
		}
		if rep.NextUpdateSeq != prev+int(rep.Updates) {
			t.Fatalf("%d clients: NextUpdateSeq %d, want base %d + %d updates",
				rep.Clients, rep.NextUpdateSeq, prev, rep.Updates)
		}
		prev = rep.NextUpdateSeq
	}
}

// TestFractionSweep: the update-fraction sweep runs one driver step per
// fraction against the same warm engine, threads the update sequence
// across steps, and reports aggregate read latency per point.
func TestFractionSweep(t *testing.T) {
	e := &stubEngine{}
	fractions := []float64{0, 0.3, 0.5}
	points, err := FractionSweep(context.Background(), e, core.DCMD, fractions, Config{
		Clients: 2, OpsPerClient: 40, Queries: testMix, Think: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(fractions) {
		t.Fatalf("%d points, want %d", len(points), len(fractions))
	}
	prevSeq := 0
	for i, pt := range points {
		rep := pt.Report
		if pt.Fraction != fractions[i] {
			t.Fatalf("point %d fraction %v, want %v", i, pt.Fraction, fractions[i])
		}
		if rep.Errs != 0 {
			t.Fatalf("fraction %v: %d errors (update seq not threaded?)", pt.Fraction, rep.Errs)
		}
		if rep.ReadCount == 0 || rep.ReadP99 <= 0 {
			t.Fatalf("fraction %v: no aggregate read latency (count %d, p99 %v)",
				pt.Fraction, rep.ReadCount, rep.ReadP99)
		}
		if rep.ReadCount+rep.Updates != rep.Ops {
			t.Fatalf("fraction %v: reads %d + updates %d != ops %d",
				pt.Fraction, rep.ReadCount, rep.Updates, rep.Ops)
		}
		if pt.Fraction == 0 && rep.Updates != 0 {
			t.Fatalf("read-only point issued %d updates", rep.Updates)
		}
		if pt.Fraction > 0 && rep.Updates == 0 {
			t.Fatalf("fraction %v issued no updates", pt.Fraction)
		}
		if rep.NextUpdateSeq != prevSeq+int(rep.Updates) {
			t.Fatalf("fraction %v: NextUpdateSeq %d, want base %d + %d",
				pt.Fraction, rep.NextUpdateSeq, prevSeq, rep.Updates)
		}
		prevSeq = rep.NextUpdateSeq
	}
}

func TestMixedFormatters(t *testing.T) {
	e := &stubEngine{}
	reports, err := Sweep(context.Background(), e, core.DCMD, []int{1, 2}, Config{
		OpsPerClient: 30, Queries: testMix, Think: -1, UpdateFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var table bytes.Buffer
	WriteTable(&table, reports)
	for _, want := range []string{"updates", "Per-update-op latency", "U1"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
	var csvb bytes.Buffer
	if err := WriteCSV(&csvb, reports); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvb.String()), "\n")
	wantCols := len(strings.Split(lines[0], ","))
	sawUpdate := false
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Errorf("csv row has %d cols, header %d: %q", got, wantCols, line)
		}
		if strings.Contains(line, ",U1,") || strings.Contains(line, ",U2,") || strings.Contains(line, ",U3,") {
			sawUpdate = true
		}
	}
	if !sawUpdate {
		t.Fatalf("csv has no update rows:\n%s", csvb.String())
	}
	var jsb bytes.Buffer
	if err := WriteJSON(&jsb, reports); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"updates"`, `"update_cells"`, `"query": "U1"`} {
		if !strings.Contains(jsb.String(), want) {
			t.Fatalf("json missing %s:\n%s", want, jsb.String())
		}
	}
}
