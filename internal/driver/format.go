package driver

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ms renders a duration as fractional milliseconds, the unit of the
// paper's result tables.
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

// WriteTable renders reports as the human-readable scaling table: one
// summary row per client count, then per-query latency cells of the last
// (highest-concurrency) step.
func WriteTable(w io.Writer, reports []Report) {
	if len(reports) == 0 {
		return
	}
	r0 := reports[0]
	mixed := false
	for _, r := range reports {
		if r.Updates > 0 {
			mixed = true
		}
	}
	fmt.Fprintf(w, "Throughput: %s on %s (closed loop, %d query types in mix)\n",
		r0.Engine, r0.Class, len(r0.Mix))
	if mixed {
		fmt.Fprintf(w, "%-8s %-10s %-8s %-8s %-6s %-9s %-10s\n", "clients", "qps", "ops", "updates", "errs", "canceled", "elapsed")
		for _, r := range reports {
			fmt.Fprintf(w, "%-8d %-10.1f %-8d %-8d %-6d %-9d %-10s\n",
				r.Clients, r.Throughput, r.Ops, r.Updates, r.Errs, r.Canceled, r.Elapsed.Round(time.Millisecond))
		}
	} else {
		fmt.Fprintf(w, "%-8s %-10s %-8s %-6s %-9s %-10s\n", "clients", "qps", "ops", "errs", "canceled", "elapsed")
		for _, r := range reports {
			fmt.Fprintf(w, "%-8d %-10.1f %-8d %-6d %-9d %-10s\n",
				r.Clients, r.Throughput, r.Ops, r.Errs, r.Canceled, r.Elapsed.Round(time.Millisecond))
		}
	}
	last := reports[len(reports)-1]
	fmt.Fprintf(w, "\nPer-query latency at %d clients (ms):\n", last.Clients)
	fmt.Fprintf(w, "%-6s %-8s %-10s %-10s %-10s %-10s\n", "query", "count", "mean", "p50", "p95", "p99")
	for _, c := range last.Cells {
		fmt.Fprintf(w, "%-6s %-8d %-10s %-10s %-10s %-10s\n",
			c.Query, c.Count, ms(c.Mean), ms(c.P50), ms(c.P95), ms(c.P99))
	}
	if len(last.UpdateCells) > 0 {
		fmt.Fprintf(w, "\nPer-update-op latency at %d clients (ms, update only — verification excluded):\n", last.Clients)
		fmt.Fprintf(w, "%-6s %-8s %-6s %-10s %-10s %-10s %-10s\n", "op", "count", "errs", "mean", "p50", "p95", "p99")
		for _, c := range last.UpdateCells {
			fmt.Fprintf(w, "%-6s %-8d %-6d %-10s %-10s %-10s %-10s\n",
				c.Op, c.Count, c.Errs, ms(c.Mean), ms(c.P50), ms(c.P95), ms(c.P99))
		}
	}
}

// WriteCSV renders one row per (client count, query) cell plus a summary
// row per client count (query column empty, latencies blank).
func WriteCSV(w io.Writer, reports []Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"engine", "class", "clients", "query", "count", "errs", "canceled",
		"qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
	}); err != nil {
		return err
	}
	for _, r := range reports {
		row := []string{
			r.Engine, r.Class.String(), strconv.Itoa(r.Clients), "",
			strconv.FormatInt(r.Ops, 10), strconv.FormatInt(r.Errs, 10),
			strconv.FormatInt(r.Canceled, 10),
			strconv.FormatFloat(r.Throughput, 'f', 2, 64), "", "", "", "",
		}
		if err := cw.Write(row); err != nil {
			return err
		}
		for _, c := range r.Cells {
			row := []string{
				r.Engine, r.Class.String(), strconv.Itoa(r.Clients), c.Query.String(),
				strconv.FormatInt(c.Count, 10), "", "", "",
				ms(c.Mean), ms(c.P50), ms(c.P95), ms(c.P99),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		// Update cells ride in the same schema, keyed by op name (U1..U3)
		// in the query column.
		for _, c := range r.UpdateCells {
			row := []string{
				r.Engine, r.Class.String(), strconv.Itoa(r.Clients), c.Op.String(),
				strconv.FormatInt(c.Count, 10), strconv.FormatInt(c.Errs, 10), "", "",
				ms(c.Mean), ms(c.P50), ms(c.P95), ms(c.P99),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonReport is the machine-readable shape of a Report: enum-typed fields
// (class, query ids) render as their names and durations as fractional
// milliseconds, so consumers need no knowledge of the Go constants.
type jsonReport struct {
	Engine     string     `json:"engine"`
	Class      string     `json:"class"`
	Clients    int        `json:"clients"`
	Mix        []string   `json:"mix"`
	ElapsedMS  float64    `json:"elapsed_ms"`
	Ops        int64      `json:"ops"`
	Errs       int64      `json:"errs"`
	Canceled   int64      `json:"canceled"`
	Throughput float64    `json:"qps"`
	Cells      []jsonCell `json:"cells"`
	ClientOps  []int      `json:"client_ops"`
	Updates    int64      `json:"updates,omitempty"`
	UpdateErrs int64      `json:"update_errs,omitempty"`
	// UpdateCells reuses the query-cell shape with the op name (U1..U3)
	// in the query field.
	UpdateCells []jsonCell `json:"update_cells,omitempty"`
}

type jsonCell struct {
	Query  string  `json:"query"`
	Count  int64   `json:"count"`
	Errs   int64   `json:"errs,omitempty"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteJSON renders the reports as an indented JSON array.
func WriteJSON(w io.Writer, reports []Report) error {
	out := make([]jsonReport, 0, len(reports))
	for _, r := range reports {
		jr := jsonReport{
			Engine:     r.Engine,
			Class:      r.Class.String(),
			Clients:    r.Clients,
			Mix:        make([]string, 0, len(r.Mix)),
			ElapsedMS:  msf(r.Elapsed),
			Ops:        r.Ops,
			Errs:       r.Errs,
			Canceled:   r.Canceled,
			Throughput: r.Throughput,
			Cells:      make([]jsonCell, 0, len(r.Cells)),
			ClientOps:  r.ClientOps,
		}
		for _, q := range r.Mix {
			jr.Mix = append(jr.Mix, q.String())
		}
		for _, c := range r.Cells {
			jr.Cells = append(jr.Cells, jsonCell{
				Query: c.Query.String(), Count: c.Count,
				MeanMS: msf(c.Mean), P50MS: msf(c.P50),
				P95MS: msf(c.P95), P99MS: msf(c.P99),
			})
		}
		jr.Updates = r.Updates
		jr.UpdateErrs = r.UpdateErrs
		for _, c := range r.UpdateCells {
			jr.UpdateCells = append(jr.UpdateCells, jsonCell{
				Query: c.Op.String(), Count: c.Count, Errs: c.Errs,
				MeanMS: msf(c.Mean), P50MS: msf(c.P50),
				P95MS: msf(c.P95), P99MS: msf(c.P99),
			})
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
