package driver

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"xbench/internal/core"
)

// stubEngine answers every query instantly and records the sequence of
// query ids it saw (meaningful only with one client). Documents live in
// an in-memory map so mixed-mode runs (updates + verification queries)
// behave like a real store.
type stubEngine struct {
	mu        sync.Mutex
	seen      []core.QueryID
	execErr   error
	noQuery   map[core.QueryID]bool
	updateErr error
	docs      map[string][]byte
	updates   int
}

func (s *stubEngine) Name() string                         { return "stub" }
func (s *stubEngine) Supports(core.Class, core.Size) error { return nil }
func (s *stubEngine) BuildIndexes([]core.IndexSpec) error  { return nil }
func (s *stubEngine) ColdReset()                           {}
func (s *stubEngine) PageIO() int64                        { return 0 }
func (s *stubEngine) Close() error                         { return nil }
func (s *stubEngine) Load(context.Context, *core.Database) (core.LoadStats, error) {
	return core.LoadStats{}, nil
}

func (s *stubEngine) mutate(name string, data []byte, insert bool) error {
	if s.updateErr != nil {
		return s.updateErr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.docs == nil {
		s.docs = map[string][]byte{}
	}
	if insert {
		if _, ok := s.docs[name]; ok {
			return errors.New("duplicate insert")
		}
	}
	s.updates++
	if data == nil {
		delete(s.docs, name)
		return nil
	}
	s.docs[name] = data
	return nil
}

func (s *stubEngine) InsertDocument(_ context.Context, name string, data []byte) error {
	return s.mutate(name, data, true)
}

func (s *stubEngine) ReplaceDocument(_ context.Context, name string, data []byte) error {
	return s.mutate(name, data, false)
}

func (s *stubEngine) DeleteDocument(_ context.Context, name string) error {
	return s.mutate(name, nil, false)
}

func (s *stubEngine) Execute(_ context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	if s.noQuery[q] {
		return core.Result{}, core.ErrNoQuery
	}
	if s.execErr != nil {
		return core.Result{}, s.execErr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Update-workload verification: Q1 for an update target id ("OU<n>"
	// / "aU<n>") answers from the document map, so U3's "gone after
	// delete" check works against the stub.
	if x := p["X"]; q == core.Q1 && len(x) > 2 && (x[:2] == "OU" || x[:2] == "aU") {
		for _, name := range []string{"order-update-" + x[2:] + ".xml", "article-update-" + x[2:] + ".xml"} {
			if doc, ok := s.docs[name]; ok {
				return core.Result{Items: []string{string(doc)}}, nil
			}
		}
		return core.Result{}, nil
	}
	s.seen = append(s.seen, q)
	return core.Result{Items: []string{"x"}}, nil
}

var testMix = []core.QueryID{core.Q1, core.Q5, core.Q8, core.Q14}

// TestOpSequenceDeterministic pins the driver's determinism contract:
// same (seed, client, mix) replays the same sequence; distinct clients
// draw distinct streams.
func TestOpSequenceDeterministic(t *testing.T) {
	a := OpSequence(42, 0, testMix, 200)
	b := OpSequence(42, 0, testMix, 200)
	if len(a) != 200 {
		t.Fatalf("sequence length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs on replay: %s vs %s", i, a[i], b[i])
		}
	}
	c := OpSequence(42, 1, testMix, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clients 0 and 1 drew identical sequences")
	}
	d := OpSequence(43, 0, testMix, 200)
	same = true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical sequences")
	}
}

// TestSeedZeroSelectsDefaultSeed pins the Seed-0 contract: zero is an
// explicit sentinel for DefaultSeed everywhere — WithDefaults resolves
// it, and the sequence replayers substitute it the same way, so
// OpSequence(0, ...) describes exactly what a Seed-0 run executed
// (previously Run coerced 0 to 1 but OpSequence did not, and the two
// disagreed).
func TestSeedZeroSelectsDefaultSeed(t *testing.T) {
	if got := (Config{}).WithDefaults().Seed; got != DefaultSeed {
		t.Fatalf("WithDefaults resolved Seed 0 to %d, want DefaultSeed %d", got, DefaultSeed)
	}
	if got := (Config{Seed: 42}).WithDefaults().Seed; got != 42 {
		t.Fatalf("WithDefaults rewrote explicit seed 42 to %d", got)
	}
	zero := OpSequence(0, 0, testMix, 100)
	def := OpSequence(DefaultSeed, 0, testMix, 100)
	for i := range zero {
		if zero[i] != def[i] {
			t.Fatalf("op %d: OpSequence(0) %s != OpSequence(DefaultSeed) %s", i, zero[i], def[i])
		}
	}
	mzero := MixedOpSequence(0, 0, testMix, nil, 0.5, 100)
	mdef := MixedOpSequence(DefaultSeed, 0, testMix, nil, 0.5, 100)
	for i := range mzero {
		if mzero[i] != mdef[i] {
			t.Fatalf("mixed op %d: seed 0 %s != DefaultSeed %s", i, mzero[i], mdef[i])
		}
	}
}

// TestRunFollowsOpSequence: with one client the engine must see exactly
// the sequence OpSequence predicts.
func TestRunFollowsOpSequence(t *testing.T) {
	e := &stubEngine{}
	rep, err := Run(context.Background(), e, core.DCMD, Config{
		Clients:      1,
		OpsPerClient: 40,
		Seed:         7,
		Queries:      testMix,
		NoWarmup:     true,
		Think:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := OpSequence(7, 0, testMix, 40)
	if len(e.seen) != len(want) {
		t.Fatalf("engine saw %d ops, want %d", len(e.seen), len(want))
	}
	for i := range want {
		if e.seen[i] != want[i] {
			t.Fatalf("op %d: engine saw %s, OpSequence predicts %s", i, e.seen[i], want[i])
		}
	}
	if rep.Ops != 40 || rep.Errs != 0 {
		t.Fatalf("report ops=%d errs=%d", rep.Ops, rep.Errs)
	}
}

func TestRunMultiClientAccounting(t *testing.T) {
	e := &stubEngine{}
	rep, err := Run(context.Background(), e, core.DCMD, Config{
		Clients:      4,
		OpsPerClient: 10,
		Queries:      testMix,
		NoWarmup:     true,
		Think:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 40 {
		t.Fatalf("Ops = %d, want 40", rep.Ops)
	}
	if len(rep.ClientOps) != 4 {
		t.Fatalf("ClientOps = %v", rep.ClientOps)
	}
	for c, n := range rep.ClientOps {
		if n != 10 {
			t.Errorf("client %d ran %d ops, want 10", c, n)
		}
	}
	var cells int64
	for _, c := range rep.Cells {
		cells += c.Count
		if c.Count > 0 && c.P50 <= 0 {
			t.Errorf("%s: count %d but p50 = %v", c.Query, c.Count, c.P50)
		}
	}
	if cells != 40 {
		t.Fatalf("cell counts sum to %d, want 40", cells)
	}
	if rep.Throughput <= 0 {
		t.Fatal("no throughput reported")
	}
}

func TestRunSurfacesQueryErrors(t *testing.T) {
	e := &stubEngine{execErr: errors.New("synthetic failure")}
	rep, err := Run(context.Background(), e, core.DCMD, Config{
		Clients: 2, OpsPerClient: 3, Queries: testMix, NoWarmup: true, Think: -1,
	})
	if err == nil {
		t.Fatal("Run swallowed query failures")
	}
	if rep.Errs != 6 {
		t.Fatalf("Errs = %d, want 6", rep.Errs)
	}
}

// TestRunCountsCancellationsSeparately: ops that die with a context
// error land in Canceled, not Errs, do not fail the run, and surface as
// their own column in every output format.
func TestRunCountsCancellationsSeparately(t *testing.T) {
	e := &stubEngine{execErr: context.DeadlineExceeded}
	rep, err := Run(context.Background(), e, core.DCMD, Config{
		Clients: 2, OpsPerClient: 3, Queries: testMix, NoWarmup: true, Think: -1,
	})
	if err != nil {
		t.Fatalf("run with only timed-out ops reported error: %v", err)
	}
	if rep.Canceled != 6 || rep.Errs != 0 {
		t.Fatalf("Canceled = %d, Errs = %d, want 6, 0", rep.Canceled, rep.Errs)
	}

	var table bytes.Buffer
	WriteTable(&table, []Report{rep})
	if !strings.Contains(table.String(), "canceled") {
		t.Errorf("table missing canceled column:\n%s", table.String())
	}
	var csvb bytes.Buffer
	if err := WriteCSV(&csvb, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csvb.String(), "\n", 2)[0]
	if !strings.Contains(header, ",canceled,") {
		t.Errorf("csv header missing canceled column: %q", header)
	}
	var jsb bytes.Buffer
	if err := WriteJSON(&jsb, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsb.String(), `"canceled": 6`) {
		t.Errorf("json missing canceled count:\n%s", jsb.String())
	}
}

// TestWarmupFiltersUndefinedQueries: queries an engine declines with
// ErrNoQuery are dropped from the mix, not counted as failures.
func TestWarmupFiltersUndefinedQueries(t *testing.T) {
	e := &stubEngine{noQuery: map[core.QueryID]bool{core.Q5: true}}
	rep, err := Run(context.Background(), e, core.DCMD, Config{
		Clients: 1, OpsPerClient: 5, Queries: testMix, Think: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range rep.Mix {
		if q == core.Q5 {
			t.Fatal("declined query stayed in the mix")
		}
	}
	if len(rep.Mix) != len(testMix)-1 {
		t.Fatalf("mix = %v", rep.Mix)
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := &stubEngine{}
	rep, err := Run(ctx, e, core.DCMD, Config{
		Clients: 2, OpsPerClient: 1000, Queries: testMix, NoWarmup: true, Think: -1,
	})
	if err != nil {
		t.Fatalf("canceled run reported error: %v", err)
	}
	if rep.Ops != 0 {
		t.Fatalf("canceled run executed %d ops", rep.Ops)
	}
}

func TestRunDurationMode(t *testing.T) {
	e := &stubEngine{}
	rep, err := Run(context.Background(), e, core.DCMD, Config{
		Clients: 2, Duration: 30 * time.Millisecond, Queries: testMix,
		NoWarmup: true, Think: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("duration-bounded run executed nothing")
	}
}

func TestSweepReusesWarmEngine(t *testing.T) {
	e := &stubEngine{}
	reports, err := Sweep(context.Background(), e, core.DCMD, []int{1, 2}, Config{
		OpsPerClient: 5, Queries: testMix, Think: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Clients != 1 || reports[1].Clients != 2 {
		t.Fatalf("reports = %+v", reports)
	}
}

// TestSweepCarriesFilteredMix: warmup only runs on the first step, so the
// mix it filtered (dropping queries the engine declines) must carry into
// the later, warmup-free steps — otherwise they hit ErrNoQuery at runtime.
func TestSweepCarriesFilteredMix(t *testing.T) {
	e := &stubEngine{noQuery: map[core.QueryID]bool{core.Q5: true}}
	reports, err := Sweep(context.Background(), e, core.DCMD, []int{1, 2, 4}, Config{
		OpsPerClient: 20, Queries: testMix, Think: -1,
	})
	if err != nil {
		t.Fatalf("sweep with a declined query in the candidates: %v", err)
	}
	for _, rep := range reports {
		if rep.Errs != 0 {
			t.Fatalf("%d clients: %d runtime errors", rep.Clients, rep.Errs)
		}
		for _, q := range rep.Mix {
			if q == core.Q5 {
				t.Fatalf("%d clients: declined query back in the mix", rep.Clients)
			}
		}
	}
}

func TestFormatters(t *testing.T) {
	e := &stubEngine{}
	reports, err := Sweep(context.Background(), e, core.DCMD, []int{1, 2}, Config{
		OpsPerClient: 5, Queries: testMix, Think: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var table bytes.Buffer
	WriteTable(&table, reports)
	for _, want := range []string{"clients", "qps", "p50", "p95", "p99", "Q1"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
	var csvb bytes.Buffer
	if err := WriteCSV(&csvb, reports); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvb.String()), "\n")
	wantCols := len(strings.Split(lines[0], ","))
	if wantCols < 5 || len(lines) < 3 {
		t.Fatalf("csv too small:\n%s", csvb.String())
	}
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Errorf("csv row has %d cols, header %d: %q", got, wantCols, line)
		}
	}
	var jsb bytes.Buffer
	if err := WriteJSON(&jsb, reports); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"qps"`, `"class": "DC/MD"`, `"query": "Q1"`, `"p99_ms"`} {
		if !strings.Contains(jsb.String(), want) {
			t.Fatalf("json missing %s:\n%s", want, jsb.String())
		}
	}
}
