// Package toxgene is a template-based synthetic XML document generator in
// the spirit of ToXgene (Barbosa et al., WebDB 2002), the tool the XBench
// paper uses for database generation (paper §2.1.3).
//
// A Template declares an element type: its occurrence distribution within
// the parent, presence probability for optional elements, attribute
// generators, a content generator for leaves, and child templates. Emit
// walks a template with a deterministic RNG and streams the instance into
// an xmldom.Encoder.
//
// Value generators receive a Ctx exposing the RNG, the instance path
// (index of each ancestor occurrence), and shared variables — enough to
// mint unique ids and cross references.
package toxgene

import (
	"fmt"
	"strconv"

	"xbench/internal/stats"
	"xbench/internal/xmldom"
)

// Ctx is the generation context passed to value generators.
type Ctx struct {
	// R is the RNG for the current element instance.
	R *stats.RNG
	// Path holds the occurrence index of each open template level, root
	// first. Path[len(Path)-1] is the index of the current instance among
	// its siblings produced by the same template.
	Path []int
	// Vars carries user state across generator calls (e.g. the current
	// entry's headword so quotation generators can reference it).
	Vars map[string]any
}

// Index returns the innermost occurrence index.
func (c *Ctx) Index() int {
	if len(c.Path) == 0 {
		return 0
	}
	return c.Path[len(c.Path)-1]
}

// IndexAt returns the occurrence index at template depth d (0 = root).
// Out-of-range depths return 0.
func (c *Ctx) IndexAt(d int) int {
	if d < 0 || d >= len(c.Path) {
		return 0
	}
	return c.Path[d]
}

// Gen produces a string value from the context.
type Gen func(*Ctx) string

// Const returns a generator that always produces s.
func Const(s string) Gen { return func(*Ctx) string { return s } }

// Seq returns a generator producing prefix + innermost occurrence index
// (1-based), e.g. Seq("I") -> "I1", "I2", ...
func Seq(prefix string) Gen {
	return func(c *Ctx) string { return prefix + strconv.Itoa(c.Index()+1) }
}

// AttrTmpl declares one attribute.
type AttrTmpl struct {
	Name string
	// Value generates the attribute value.
	Value Gen
	// Prob is the presence probability; 0 means always present.
	Prob float64
}

// Tmpl declares one element type.
type Tmpl struct {
	// Name of the emitted element.
	Name string
	// Count is the occurrence distribution within the parent. nil means
	// exactly one occurrence.
	Count stats.Dist
	// Prob is the presence probability for optional elements; 0 or 1
	// means mandatory (given Count > 0 occurrences were drawn).
	Prob float64
	// Attrs declares attributes in emission order.
	Attrs []AttrTmpl
	// Content generates leaf text. A template may have both Content and
	// Children, producing mixed content: the text is emitted first, then
	// the children, then optionally Tail.
	Content Gen
	// Tail generates trailing text after the children (mixed content).
	Tail Gen
	// Children are emitted in order.
	Children []*Tmpl
	// Before, if set, runs once per instance before emission; it can seed
	// ctx.Vars for descendant generators.
	Before func(*Ctx)
}

// Emit writes one or more instances of t (per its Count/Prob) into e.
// The rng must be dedicated to this subtree; Emit splits per-instance
// streams from it so documents are insensitive to sibling reordering.
func Emit(e *xmldom.Encoder, t *Tmpl, rng *stats.RNG, ctx *Ctx) error {
	if ctx == nil {
		ctx = &Ctx{Vars: map[string]any{}}
	}
	n := 1
	if t.Count != nil {
		n = stats.DrawInt(rng, t.Count)
	}
	for i := 0; i < n; i++ {
		inst := rng.Split(uint64(i))
		if p := t.Prob; p > 0 && p < 1 && !inst.Bool(p) {
			continue
		}
		if err := emitOne(e, t, inst, ctx, i); err != nil {
			return err
		}
	}
	return nil
}

func emitOne(e *xmldom.Encoder, t *Tmpl, rng *stats.RNG, ctx *Ctx, idx int) error {
	ctx.Path = append(ctx.Path, idx)
	defer func() { ctx.Path = ctx.Path[:len(ctx.Path)-1] }()
	ctx.R = rng
	if t.Before != nil {
		t.Before(ctx)
	}
	var attrs []string
	for _, a := range t.Attrs {
		if a.Prob > 0 && a.Prob < 1 && !rng.Bool(a.Prob) {
			continue
		}
		ctx.R = rng
		attrs = append(attrs, a.Name, a.Value(ctx))
	}
	e.Begin(t.Name, attrs...)
	if t.Content != nil {
		ctx.R = rng
		e.Text(t.Content(ctx))
	}
	for ci, child := range t.Children {
		if err := Emit(e, child, rng.Split(0x10000+uint64(ci)), ctx); err != nil {
			return err
		}
	}
	if t.Tail != nil {
		ctx.R = rng
		e.Text(t.Tail(ctx))
	}
	e.End()
	return nil
}

// Document generates a complete document with t as the root element and
// returns the serialized bytes.
func Document(t *Tmpl, seed uint64) ([]byte, error) {
	e := xmldom.NewEncoder()
	root := *t
	root.Count = nil // exactly one root
	root.Prob = 0
	if err := Emit(e, &root, stats.NewRNG(seed), nil); err != nil {
		return nil, err
	}
	b, err := e.Bytes()
	if err != nil {
		return nil, fmt.Errorf("toxgene: %w", err)
	}
	return b, nil
}
