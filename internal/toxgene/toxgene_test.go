package toxgene

import (
	"bytes"
	"strings"
	"testing"

	"xbench/internal/stats"
	"xbench/internal/xmldom"
)

func TestDocumentBasic(t *testing.T) {
	tmpl := &Tmpl{
		Name:  "root",
		Attrs: []AttrTmpl{{Name: "v", Value: Const("1")}},
		Children: []*Tmpl{
			{Name: "leaf", Content: Const("text")},
		},
	}
	b, err := Document(tmpl, 1)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmldom.Parse(b)
	if err != nil {
		t.Fatalf("output unparseable: %v", err)
	}
	root := doc.Root()
	if root.Name != "root" {
		t.Fatalf("root = %s", root.Name)
	}
	if v, _ := root.Attr("v"); v != "1" {
		t.Fatal("attr missing")
	}
	if root.FirstChild("leaf").Text() != "text" {
		t.Fatal("leaf content missing")
	}
}

func TestDocumentDeterministic(t *testing.T) {
	tmpl := &Tmpl{
		Name: "r",
		Children: []*Tmpl{{
			Name:  "c",
			Count: stats.Uniform{Lo: 1, Hi: 9},
			Content: func(ctx *Ctx) string {
				return strings.Repeat("x", 1+ctx.R.Intn(5))
			},
		}},
	}
	a, _ := Document(tmpl, 7)
	b, _ := Document(tmpl, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different documents")
	}
	c, _ := Document(tmpl, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestCountDistribution(t *testing.T) {
	tmpl := &Tmpl{
		Name: "r",
		Children: []*Tmpl{{
			Name:    "c",
			Count:   stats.Uniform{Lo: 3, Hi: 3},
			Content: Const("x"),
		}},
	}
	b, _ := Document(tmpl, 1)
	doc := xmldom.MustParse(string(b))
	if n := len(doc.Root().ChildElements("c")); n != 3 {
		t.Fatalf("expected exactly 3 children, got %d", n)
	}
}

func TestOptionalProbability(t *testing.T) {
	tmpl := &Tmpl{
		Name: "r",
		Children: []*Tmpl{
			{Name: "always", Content: Const("x")},
			{Name: "sometimes", Prob: 0.5, Content: Const("y")},
		},
	}
	present, absent := 0, 0
	for seed := uint64(0); seed < 60; seed++ {
		b, _ := Document(tmpl, seed)
		doc := xmldom.MustParse(string(b))
		if doc.Root().FirstChild("always") == nil {
			t.Fatal("mandatory child missing")
		}
		if doc.Root().FirstChild("sometimes") != nil {
			present++
		} else {
			absent++
		}
	}
	if present == 0 || absent == 0 {
		t.Fatalf("Prob=0.5 not probabilistic: present=%d absent=%d", present, absent)
	}
}

func TestAttrProbability(t *testing.T) {
	tmpl := &Tmpl{
		Name: "r",
		Attrs: []AttrTmpl{
			{Name: "always", Value: Const("a")},
			{Name: "maybe", Value: Const("b"), Prob: 0.5},
		},
	}
	with, without := 0, 0
	for seed := uint64(0); seed < 60; seed++ {
		b, _ := Document(tmpl, seed)
		doc := xmldom.MustParse(string(b))
		if _, ok := doc.Root().Attr("always"); !ok {
			t.Fatal("mandatory attribute missing")
		}
		if _, ok := doc.Root().Attr("maybe"); ok {
			with++
		} else {
			without++
		}
	}
	if with == 0 || without == 0 {
		t.Fatalf("attr Prob=0.5 not probabilistic: with=%d without=%d", with, without)
	}
}

func TestSeqAndIndex(t *testing.T) {
	tmpl := &Tmpl{
		Name: "r",
		Children: []*Tmpl{{
			Name:  "item",
			Count: stats.Uniform{Lo: 4, Hi: 4},
			Attrs: []AttrTmpl{{Name: "id", Value: Seq("I")}},
		}},
	}
	b, _ := Document(tmpl, 1)
	doc := xmldom.MustParse(string(b))
	items := doc.Root().ChildElements("item")
	for i, it := range items {
		want := "I" + string(rune('1'+i))
		if v, _ := it.Attr("id"); v != want {
			t.Fatalf("item %d id = %q, want %q", i, v, want)
		}
	}
}

func TestMixedContent(t *testing.T) {
	tmpl := &Tmpl{
		Name:    "qt",
		Content: Const("before "),
		Children: []*Tmpl{
			{Name: "i", Content: Const("inline")},
		},
		Tail: Const(" after"),
	}
	b, _ := Document(tmpl, 1)
	doc := xmldom.MustParse(string(b))
	if !doc.Root().HasMixedContent() {
		t.Fatalf("no mixed content in %s", b)
	}
	if got := doc.Root().Text(); got != "before inline after" {
		t.Fatalf("text = %q", got)
	}
}

func TestBeforeHookAndVars(t *testing.T) {
	tmpl := &Tmpl{
		Name: "r",
		Before: func(ctx *Ctx) {
			ctx.Vars["word"] = "shared"
		},
		Children: []*Tmpl{{
			Name: "c",
			Content: func(ctx *Ctx) string {
				return ctx.Vars["word"].(string)
			},
		}},
	}
	b, _ := Document(tmpl, 1)
	doc := xmldom.MustParse(string(b))
	if doc.Root().FirstChild("c").Text() != "shared" {
		t.Fatal("Vars not shared from Before hook")
	}
}

func TestNestedPathIndexes(t *testing.T) {
	tmpl := &Tmpl{
		Name: "r",
		Children: []*Tmpl{{
			Name:  "outer",
			Count: stats.Uniform{Lo: 2, Hi: 2},
			Children: []*Tmpl{{
				Name:  "inner",
				Count: stats.Uniform{Lo: 2, Hi: 2},
				Content: func(ctx *Ctx) string {
					return string(rune('a'+ctx.IndexAt(1))) + string(rune('0'+ctx.Index()))
				},
			}},
		}},
	}
	b, _ := Document(tmpl, 1)
	doc := xmldom.MustParse(string(b))
	var got []string
	for _, o := range doc.Root().ChildElements("outer") {
		for _, in := range o.ChildElements("inner") {
			got = append(got, in.Text())
		}
	}
	want := []string{"a0", "a1", "b0", "b1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path indexes wrong: got %v want %v", got, want)
		}
	}
}

func TestSiblingInsensitivity(t *testing.T) {
	// Instance i's content must depend only on its own split stream, not on
	// how many earlier siblings were drawn: with a fixed count, instance
	// content should be identical across two generations.
	child := &Tmpl{
		Name:  "c",
		Count: stats.Uniform{Lo: 5, Hi: 5},
		Content: func(ctx *Ctx) string {
			return strings.Repeat("z", 1+ctx.R.Intn(9))
		},
	}
	tmpl := &Tmpl{Name: "r", Children: []*Tmpl{child}}
	a, _ := Document(tmpl, 3)
	b, _ := Document(tmpl, 3)
	if !bytes.Equal(a, b) {
		t.Fatal("sibling streams not deterministic")
	}
}

func TestIndexAtOutOfRange(t *testing.T) {
	c := &Ctx{Path: []int{4}}
	if c.IndexAt(-1) != 0 || c.IndexAt(5) != 0 {
		t.Fatal("out-of-range IndexAt should return 0")
	}
	if c.Index() != 4 {
		t.Fatal("Index wrong")
	}
	empty := &Ctx{}
	if empty.Index() != 0 {
		t.Fatal("empty ctx Index should be 0")
	}
}
