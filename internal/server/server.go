// Package server is the network serving layer: it exposes any
// core.Engine over the wire protocol of internal/wire, so the benchmark's
// measurements can include the client/server path — connection handling,
// admission control, per-request timeouts — instead of stopping at
// library calls.
//
// Architecture: one accept loop, one read goroutine per connection, one
// bounded goroutine per in-flight request. A connection's requests
// execute concurrently and its responses — matched to requests by frame
// ID, so they may return in any order — are coalesced by a per-connection
// batched writer (connwriter.go) into one syscall per flush. That is what
// makes the pipelined client transport (internal/client Config.Pipeline)
// pay off: a mux connection carrying many in-flight requests is served by
// many engine goroutines, not a serial loop. One-request-at-a-time
// clients (the pooled transport, raw test connections) see the old
// behavior: one frame in, one frame out. Every engine-touching request
// passes the admission controller: a semaphore of MaxInflight slots with
// a bounded queue wait. A request that cannot get a slot within QueueWait
// is rejected with StatusOverloaded — load shedding, never queue
// collapse. A per-connection pipeline cap (connPipeline) additionally
// stops any single connection from parking unbounded goroutines in the
// admission queue: past the cap the server simply stops reading and TCP
// backpressure does the rest.
//
// Graceful drain (Shutdown): stop accepting connections, reject new
// requests with StatusShutdown, let in-flight requests finish and their
// responses flush, then close the connections and finally the engine.
// The drain barrier is the semaphore itself: Shutdown acquires every
// slot, which can only succeed once no request holds one.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xbench/internal/core"
	"xbench/internal/metrics"
	"xbench/internal/updatelog"
	"xbench/internal/wire"
)

// Config controls one server.
type Config struct {
	// Addr is the TCP listen address; empty selects "127.0.0.1:0"
	// (loopback, kernel-assigned port — read it back from Addr()).
	Addr string
	// MaxInflight caps concurrently executing engine requests (the
	// admission semaphore size); <= 0 selects 64.
	MaxInflight int
	// QueueWait bounds how long a request may wait for an admission slot
	// before it is rejected with StatusOverloaded; <= 0 selects 100ms.
	QueueWait time.Duration
	// RequestTimeout caps the server-side execution time of one request;
	// <= 0 selects 30s. A tighter client deadline, carried in the request
	// payload, wins.
	RequestTimeout time.Duration
	// Metrics receives the server's counters and wire-latency histograms;
	// nil creates a private registry (readable via Metrics()).
	Metrics *metrics.Registry
	// DedupPerClient bounds the idempotency dedup window kept per client
	// (see dedup.go); <= 0 selects 4096.
	DedupPerClient int
	// ReadOnly rejects every mutating op (updates, load, index builds)
	// with core.ErrReadOnly. It is how a read replica serves: queries
	// answer normally, while writes are turned away at the wire so the
	// replica's state advances only through journal shipping.
	ReadOnly bool
}

// withDefaults resolves zero-value fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// Server serves one engine over TCP.
type Server struct {
	cfg Config
	eng core.Engine

	ln   net.Listener
	sem  chan struct{} // admission semaphore, cap MaxInflight
	done chan struct{} // closed when drain begins

	reg        *metrics.Registry
	cAccepted  *metrics.Counter // server.conn.accepted
	cActive    *metrics.Counter // server.conn.active (level)
	rAdmitted  *metrics.Counter // server.req.admitted
	rRejected  *metrics.Counter // server.req.rejected (overload + shutdown)
	rInflight  *metrics.Counter // server.req.inflight (level)
	rDeduped   *metrics.Counter // server.req.deduped (idempotent replays)
	drainState atomic.Bool

	// Exactly-once update machinery: dedup answers retries with the
	// original result; journal (optional, see Reopen) makes acknowledged
	// updates durable across process death; updMu serializes apply +
	// journal enqueue so journal order is apply order (the fsync itself
	// happens outside updMu, shared across writers by group commit);
	// inflight holds keyed updates that applied but are not yet durable,
	// so a concurrent retry of the same key joins the pending commit
	// instead of re-applying.
	dedup    *dedupTable
	journal  *updatelog.FileLog
	updMu    sync.Mutex
	inflight map[wire.IdemKey]*pendingUpdate

	// Journal shipping (OpJournal): jtail mirrors the journal file's
	// records in commit order (seeded from the replay in Reopen, appended
	// at enqueue time under updMu), and jdurable is the count of leading
	// records whose group commit has fsynced. Replicas may only be shown
	// durable records — a record that is applied but not yet synced could
	// still be lost with the primary, and a replica must never get ahead
	// of what a primary restart would recover.
	jmu      sync.Mutex
	jtail    []updatelog.Record
	jdurable uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	connWg sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// New wraps an engine in a server. The engine should already be loaded
// (or the client will drive OpLoad over the wire). The server owns the
// engine from here on: Shutdown/Close close it.
func New(e core.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		eng:   e,
		sem:   make(chan struct{}, cfg.MaxInflight),
		done:  make(chan struct{}),
		reg:   cfg.Metrics,
		conns: map[net.Conn]struct{}{},
		dedup: newDedupTable(cfg.DedupPerClient),

		inflight: map[wire.IdemKey]*pendingUpdate{},
	}
	s.cAccepted = s.reg.Counter("server.conn.accepted")
	s.cActive = s.reg.Counter("server.conn.active")
	s.rAdmitted = s.reg.Counter("server.req.admitted")
	s.rRejected = s.reg.Counter("server.req.rejected")
	s.rInflight = s.reg.Counter("server.req.inflight")
	s.rDeduped = s.reg.Counter("server.req.deduped")
	return s
}

// Reopen is the crash-recovery constructor: it opens (or creates) the
// durable update journal at journalPath, loads db into the engine, re-
// applies the journal's committed updates in commit order, rebuilds the
// Table 3 indexes, and seeds the idempotency dedup table from the keyed
// records — all BEFORE the server exists to accept a connection. A client
// retrying an update it never got an answer for therefore finds either
// the original outcome (the update committed before the crash: dedup hit,
// no re-apply) or a clean miss (it never committed: the retry applies it
// once). The returned server journals every subsequent acknowledged
// update to the same file, so the next Reopen sees those too.
//
// On a fresh journal (no file, or no committed records) Reopen degrades
// to plain load + index + New — `xbench serve --journal=...` uses it
// unconditionally for both first start and restart.
func Reopen(e core.Engine, db *core.Database, specs []core.IndexSpec, journalPath string, cfg Config) (*Server, int, error) {
	jl, recs, err := updatelog.OpenFile(journalPath)
	if err != nil {
		return nil, 0, err
	}
	ctx := context.Background()
	if _, err := e.Load(ctx, db); err != nil {
		jl.Close()
		return nil, 0, fmt.Errorf("server: reopen load: %w", err)
	}
	if err := updatelog.Apply(ctx, e, recs); err != nil {
		jl.Close()
		return nil, 0, fmt.Errorf("server: reopen replay: %w", err)
	}
	if err := e.BuildIndexes(specs); err != nil {
		jl.Close()
		return nil, 0, fmt.Errorf("server: reopen index rebuild: %w", err)
	}
	s := New(e, cfg)
	s.journal = jl
	s.jtail = append(s.jtail, recs...)
	s.jdurable = uint64(len(recs)) // OpenFile returns only committed records
	for _, r := range recs {
		if r.Keyed() {
			s.dedup.record(wire.IdemKey{Client: r.Client, Seq: r.Seq}, okFrame(nil))
		}
	}
	return s, len(recs), nil
}

// Start binds the listen address and launches the accept loop. It
// returns once the socket is bound; Addr() then reports the bound
// address (useful with port 0).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.connWg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Metrics returns the server's registry (counters documented on Config).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Inflight returns the number of requests currently holding an admission
// slot. It is the invariant chaos tests assert returns to zero: every
// admitted request releases its slot on every path.
func (s *Server) Inflight() int64 { return s.rInflight.Value() }

func (s *Server) acceptLoop() {
	defer s.connWg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (drain or Close)
		}
		s.mu.Lock()
		if s.drainState.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.cAccepted.Inc()
		s.cActive.Add(1)
		s.connWg.Add(1)
		go s.serveConn(conn)
	}
}

// dropConn unregisters and closes a connection.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.cActive.Add(-1)
}

// connPipeline caps how many of one connection's requests may be in
// flight at once. Past the cap serveConn stops reading frames, letting
// TCP backpressure pace the client; the server-wide admission semaphore
// still governs how many of those requests execute.
const connPipeline = 128

// serveConn reads one connection's requests until the peer hangs up, a
// framing error poisons the stream, or drain closes the socket underneath
// a blocked read. Each request executes in its own goroutine (bounded by
// connPipeline) and responds through the connection's batched writer, so
// a pipelined client's requests run concurrently and responses return in
// completion order, routed by frame ID.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWg.Done()
	defer s.dropConn(conn)
	w := newConnWriter(conn)
	slots := make(chan struct{}, connPipeline)
	var wg sync.WaitGroup
	defer wg.Wait() // request goroutines must not outlive engine shutdown
	// Buffered reads: a pipelined client flushes requests in batches, so
	// one kernel read pulls many frames instead of two syscalls per frame.
	br := bufio.NewReader(conn)
	for {
		req, err := wire.ReadFrame(br)
		if err != nil {
			// Clean EOF, torn frame, checksum failure, or the socket was
			// closed by drain: all terminal. A framing error cannot be
			// answered — the request id is unreliable — so the connection
			// is dropped and the client's read fails typed.
			return
		}
		slots <- struct{}{}
		wg.Add(1)
		go func(req wire.Frame) {
			defer wg.Done()
			defer func() { <-slots }()
			// scratch backs pooled response payloads (query results); it is
			// reusable once write has copied the frame into the batch. The
			// REQUEST payload is deliberately never pooled: decoded requests
			// alias it (wire dec.bytes) and updates may outlive this frame.
			scratch := wire.GetBuf()
			resp, done := s.handle(wire.Op(req.Kind), req.Payload, scratch)
			resp.ID = req.ID
			err := w.write(resp)
			wire.PutBuf(scratch)
			// The admission slot is released only after the batch holding
			// this response was written, so the drain barrier in Shutdown
			// proves every admitted request's response reached the kernel
			// before connections are severed.
			done()
			if err != nil {
				// The response could not be sent (dead peer or an
				// unencodable frame): sever the connection so the read
				// loop exits and the client's pending reads fail typed.
				conn.Close()
			}
		}(req)
	}
}

// admit acquires an admission slot, waiting at most QueueWait. It fails
// with ErrShutdown once drain began and ErrOverloaded when the wait
// deadline expires first.
func (s *Server) admit() error {
	select {
	case <-s.done:
		s.rRejected.Inc()
		return wire.ErrShutdown
	default:
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.rAdmitted.Inc()
		s.rInflight.Add(1)
		return nil
	case <-s.done:
		s.rRejected.Inc()
		return wire.ErrShutdown
	case <-t.C:
		s.rRejected.Inc()
		return wire.ErrOverloaded
	}
}

// release returns an admission slot.
func (s *Server) release() {
	s.rInflight.Add(-1)
	<-s.sem
}

// reqCtx derives the per-request context: the server-side cap, tightened
// by the client's deadline when one rode in on the payload. It is
// deliberately not a child of the drain signal — in-flight requests run
// to completion during a graceful drain.
func (s *Server) reqCtx(clientTimeout time.Duration) (context.Context, context.CancelFunc) {
	t := s.cfg.RequestTimeout
	if clientTimeout > 0 && clientTimeout < t {
		t = clientTimeout
	}
	return context.WithTimeout(context.Background(), t)
}

// noRelease is the done callback for requests that never held a slot.
func noRelease() {}

// handle dispatches one request to the engine and builds the response
// frame (ID is filled in by the caller). The returned done callback must
// be invoked after the response is written: admitted requests hold their
// admission slot until then. scratch, when non-nil, is a pooled buffer
// owned by the caller that large transient response payloads (query
// results) are encoded into; frames that outlive the response write —
// dedup-recorded update results — must never use it.
func (s *Server) handle(op wire.Op, payload []byte, scratch *[]byte) (wire.Frame, func()) {
	// Liveness and cheap reads skip admission: they must answer even on a
	// saturated server, or monitoring would be the first casualty.
	switch op {
	case wire.OpPing:
		return okFrame([]byte(s.eng.Name())), noRelease
	case wire.OpPageIO:
		return okFrame(wire.EncodeInt64(s.eng.PageIO())), noRelease
	case wire.OpSupports:
		c, sz, err := wire.DecodeClassSize(payload)
		if err != nil {
			return badRequest(err), noRelease
		}
		return errFrame(s.eng.Supports(c, sz)), noRelease
	}

	if err := s.admit(); err != nil {
		return errFrame(err), noRelease
	}
	start := time.Now()
	f := s.execute(op, payload, scratch)
	s.reg.Histogram("wire." + op.String()).Observe(time.Since(start))
	return f, s.release
}

// execute runs an admitted request against the engine.
func (s *Server) execute(op wire.Op, payload []byte, scratch *[]byte) wire.Frame {
	switch op {
	case wire.OpQuery:
		req, err := wire.DecodeQueryRequest(payload)
		if err != nil {
			return badRequest(err)
		}
		ctx, cancel := s.reqCtx(req.Timeout)
		defer cancel()
		res, err := s.eng.Execute(ctx, req.Query, req.Params)
		if err != nil {
			return errFrame(err)
		}
		if scratch != nil {
			b := wire.AppendResult((*scratch)[:0], res)
			*scratch = b
			return okFrame(b)
		}
		return okFrame(wire.EncodeResult(res))

	case wire.OpExplain:
		req, err := wire.DecodeQueryRequest(payload)
		if err != nil {
			return badRequest(err)
		}
		ctx, cancel := s.reqCtx(req.Timeout)
		defer cancel()
		node, err := core.Explain(ctx, s.eng, req.Query, req.Params)
		if err != nil {
			return errFrame(err)
		}
		if scratch != nil {
			b := wire.AppendPlanNode((*scratch)[:0], node)
			*scratch = b
			return okFrame(b)
		}
		return okFrame(wire.EncodePlanNode(node))

	case wire.OpLoad:
		if s.cfg.ReadOnly {
			return errFrame(fmt.Errorf("server: replica: %w", core.ErrReadOnly))
		}
		req, err := wire.DecodeLoadRequest(payload)
		if err != nil {
			return badRequest(err)
		}
		ctx, cancel := s.reqCtx(req.Timeout)
		defer cancel()
		st, err := s.eng.Load(ctx, &req.DB)
		if err != nil {
			return errFrame(err)
		}
		return okFrame(wire.EncodeLoadStats(st))

	case wire.OpIndexes:
		if s.cfg.ReadOnly {
			return errFrame(fmt.Errorf("server: replica: %w", core.ErrReadOnly))
		}
		specs, err := wire.DecodeIndexSpecs(payload)
		if err != nil {
			return badRequest(err)
		}
		return errFrame(s.eng.BuildIndexes(specs))

	case wire.OpColdReset:
		s.eng.ColdReset()
		return okFrame(nil)

	case wire.OpInsert, wire.OpReplace, wire.OpDelete:
		if s.cfg.ReadOnly {
			return errFrame(fmt.Errorf("server: replica: %w", core.ErrReadOnly))
		}
		req, err := wire.DecodeUpdateRequest(payload)
		if err != nil {
			return badRequest(err)
		}
		return s.executeUpdate(op, req)

	case wire.OpJournal:
		req, err := wire.DecodeJournalPullRequest(payload)
		if err != nil {
			return badRequest(err)
		}
		return s.executeJournalPull(req)

	default:
		return badRequest(fmt.Errorf("unknown op %d", byte(op)))
	}
}

// executeJournalPull answers one OpJournal window from the in-memory
// mirror of the durable journal. Only committed (fsynced) records are
// shown: a replica must never apply a record a primary crash could still
// take back. Servers running without a journal have nothing to ship and
// answer StatusBadRequest, which clients surface as wire.ErrBadRequest —
// the same "feature absent" signal old servers give for the whole op.
func (s *Server) executeJournalPull(req wire.JournalPullRequest) wire.Frame {
	if s.journal == nil {
		return badRequest(errors.New("server: no journal attached (start with --journal to ship one)"))
	}
	max := req.Max
	if max == 0 || max > wire.MaxJournalBatch {
		max = wire.MaxJournalBatch
	}
	s.jmu.Lock()
	durable := s.jdurable
	lo := req.Since
	if lo > durable {
		lo = durable
	}
	hi := min(durable, lo+max)
	recs := make([]updatelog.Record, hi-lo)
	copy(recs, s.jtail[lo:hi])
	s.jmu.Unlock()
	return okFrame(wire.EncodeJournalPullResponse(wire.JournalPullResponse{Next: hi, Records: recs}))
}

// pendingUpdate is a keyed update that applied but whose acknowledgment
// has not been released yet (its journal batch is still syncing). A
// concurrent retry of the same key waits on done and returns f instead
// of re-applying.
type pendingUpdate struct {
	done chan struct{}
	f    wire.Frame // set before done is closed
}

// executeUpdate runs one update with exactly-once semantics. A keyed
// retry whose original succeeded gets the original response without
// touching the engine; a retry that races the original's commit window
// joins the pending commit and shares its outcome; a fresh update
// applies, is journaled (the durable commit point when a journal is
// attached), then remembered in the dedup table.
//
// Locking: apply + journal Enqueue happen under updMu, so journal order
// is apply order. The fsync is waited for OUTSIDE updMu — concurrent
// writers stack into one group commit (updatelog.FileLog) instead of
// serializing on the disk. The key's inflight entry is registered before
// updMu is released and removed only after the dedup table holds the
// final frame, so at every instant a retry finds the key in exactly one
// place: dedup (committed), inflight (committing), or neither (never
// applied). No acknowledgment — original or joined retry — is released
// before the journal batch's fsync returned.
//
// Only successes are remembered and journaled: the engines' update
// protocol is exactly-old-or-new, so an error return means the update did
// not happen and a retry is safe to re-execute (a deterministic failure
// simply fails the same way again). The one ambiguous case — the update
// applied but its journal append or sync failed — is surfaced as an
// internal error WITHOUT a dedup entry, the same contract as a lost
// response: the client may retry and the retry's outcome (here, a
// duplicate-name error for inserts) is honest about the store's state.
func (s *Server) executeUpdate(op wire.Op, req wire.UpdateRequest) wire.Frame {
	if req.Key.Valid() {
		if f, ok := s.dedup.lookup(req.Key); ok {
			s.rDeduped.Inc()
			return f
		}
	}
	ctx, cancel := s.reqCtx(req.Timeout)
	defer cancel()
	// Attach the request's idempotency key to the engine call: when the
	// "engine" is itself a wire client (a router front-end forwarding to a
	// shard), the shard then dedups on the original client's identity, not
	// on a key the forwarding hop minted — exactly-once stays end-to-end.
	ctx = wire.WithIdemKey(ctx, req.Key)

	s.updMu.Lock()
	if req.Key.Valid() {
		// Re-check under the lock: two in-flight retries of the same key
		// must not both apply. A committed original is in dedup; one
		// mid-commit is in inflight — join it and share its outcome.
		if f, ok := s.dedup.lookup(req.Key); ok {
			s.updMu.Unlock()
			s.rDeduped.Inc()
			return f
		}
		if p := s.inflight[req.Key]; p != nil {
			s.updMu.Unlock()
			<-p.done
			s.rDeduped.Inc()
			return p.f
		}
	}
	var err error
	var kind updatelog.Kind
	switch op {
	case wire.OpInsert:
		kind = updatelog.KindInsert
		err = s.eng.InsertDocument(ctx, req.Name, req.Data)
	case wire.OpReplace:
		kind = updatelog.KindReplace
		err = s.eng.ReplaceDocument(ctx, req.Name, req.Data)
	default:
		kind = updatelog.KindDelete
		err = s.eng.DeleteDocument(ctx, req.Name)
	}
	var batch *updatelog.Batch
	var jidx uint64 // this record's journal index, valid when batch != nil
	if err == nil && s.journal != nil {
		rec := updatelog.Record{
			Kind: kind, Name: req.Name, Data: req.Data,
			Client: req.Key.Client, Seq: req.Key.Seq,
		}
		var jerr error
		batch, jerr = s.journal.Enqueue(rec)
		if jerr != nil {
			s.updMu.Unlock()
			return errFrame(fmt.Errorf("update applied but journal append failed (outcome not durable): %w", jerr))
		}
		// Mirror the record into the shipping tail. Still under updMu, so
		// tail order is enqueue order is journal-file order.
		s.jmu.Lock()
		jidx = uint64(len(s.jtail))
		s.jtail = append(s.jtail, rec)
		s.jmu.Unlock()
	}
	var p *pendingUpdate
	if err == nil && req.Key.Valid() {
		p = &pendingUpdate{done: make(chan struct{})}
		s.inflight[req.Key] = p
	}
	s.updMu.Unlock()

	if batch != nil {
		if jerr := s.journal.WaitDurable(batch); jerr != nil {
			err = fmt.Errorf("update applied but journal append failed (outcome not durable): %w", jerr)
		} else {
			// Group commits complete in enqueue order, so this record being
			// durable means every record before it is too: the shipping
			// watermark advances monotonically past it.
			s.jmu.Lock()
			if jidx+1 > s.jdurable {
				s.jdurable = jidx + 1
			}
			s.jmu.Unlock()
		}
	}
	f := errFrame(err)
	if p != nil {
		if err == nil {
			s.dedup.record(req.Key, f)
		}
		s.updMu.Lock()
		delete(s.inflight, req.Key)
		s.updMu.Unlock()
		p.f = f
		close(p.done)
	}
	return f
}

func okFrame(payload []byte) wire.Frame {
	return wire.Frame{Kind: byte(wire.StatusOK), Payload: payload}
}

// errFrame maps an engine error (or nil) onto a response frame.
func errFrame(err error) wire.Frame {
	if err == nil {
		return okFrame(nil)
	}
	return wire.Frame{Kind: byte(wire.StatusFor(err)), Payload: []byte(err.Error())}
}

func badRequest(err error) wire.Frame {
	return wire.Frame{Kind: byte(wire.StatusBadRequest), Payload: []byte(err.Error())}
}

// Shutdown drains the server gracefully: stop accepting, reject new
// requests, wait (bounded by ctx) for in-flight requests to finish and
// flush their responses, then close connections and the engine. It is
// what the serve command runs on SIGTERM. Safe to call once; later calls
// and Close after Shutdown are no-ops returning the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() { s.closeErr = s.shutdown(ctx) })
	return s.closeErr
}

func (s *Server) shutdown(ctx context.Context) error {
	s.drainState.Store(true)
	close(s.done) // new admissions now fail with ErrShutdown
	if s.ln != nil {
		s.ln.Close() // stop accepting
	}

	// Drain barrier: acquiring every semaphore slot proves no request is
	// in flight — and, because a request's response is written before its
	// handler loops back to read the next frame, that responses for
	// everything admitted have been handed to the kernel.
	drained := true
	for i := 0; i < s.cfg.MaxInflight; i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			drained = false
		}
		if !drained {
			break
		}
	}

	// In-flight responses are flushed (or the drain deadline expired):
	// sever the connections so blocked reads return, and wait for the
	// handlers to exit before closing the engine under them.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWg.Wait()

	err := s.eng.Close()
	if s.journal != nil {
		err = errors.Join(err, s.journal.Close())
	}
	if !drained {
		return errors.Join(fmt.Errorf("server: drain deadline expired with %d requests in flight", s.Inflight()), err)
	}
	return err
}

// Close shuts the server down with a short drain (1s): in-flight
// requests get a brief chance to finish, then everything is severed.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// ListenAndServe is the blocking convenience used by `xbench serve`: it
// starts the server, then waits for stop to fire and drains gracefully
// (bounded by drainTimeout). It returns the drain result.
func ListenAndServe(e core.Engine, cfg Config, stop <-chan struct{}, drainTimeout time.Duration) error {
	s := New(e, cfg)
	if err := s.Start(); err != nil {
		return err
	}
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

var _ io.Closer = (*Server)(nil)
