package server_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/driver"
	"xbench/internal/server"
	"xbench/internal/wire"
)

// stubEngine is an in-memory engine for wire-level tests: queries answer
// from a document map (so the update workload verifies), Execute can be
// slowed or gated to create controlled overload, and Close is recorded.
type stubEngine struct {
	delay time.Duration // per-Execute service time
	gate  chan struct{} // when non-nil, Execute blocks until it can receive

	mu     sync.Mutex
	docs   map[string][]byte
	loads  int
	resets int
	closed atomic.Bool
}

func newStub() *stubEngine { return &stubEngine{docs: map[string][]byte{}} }

func (s *stubEngine) Name() string                         { return "stub" }
func (s *stubEngine) Supports(core.Class, core.Size) error { return nil }
func (s *stubEngine) BuildIndexes([]core.IndexSpec) error  { return nil }
func (s *stubEngine) PageIO() int64                        { return 77 }
func (s *stubEngine) Close() error                         { s.closed.Store(true); return nil }

func (s *stubEngine) ColdReset() {
	s.mu.Lock()
	s.resets++
	s.mu.Unlock()
}

func (s *stubEngine) Load(_ context.Context, db *core.Database) (core.LoadStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	s.docs = map[string][]byte{}
	for _, d := range db.Docs {
		s.docs[d.Name] = d.Data
	}
	return core.LoadStats{Documents: len(db.Docs), Bytes: db.Bytes()}, nil
}

func (s *stubEngine) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	if q == core.Q20 {
		return core.Result{}, core.ErrNoQuery
	}
	// Update-workload verification: Q1 with an update target id answers
	// from the document map.
	if x := p.Get("X"); q == core.Q1 && len(x) > 2 && (x[:2] == "OU" || x[:2] == "aU") {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, name := range []string{"order-update-" + x[2:] + ".xml", "article-update-" + x[2:] + ".xml"} {
			if doc, ok := s.docs[name]; ok {
				return core.Result{Items: []string{string(doc)}}, nil
			}
		}
		return core.Result{}, nil
	}
	return core.Result{Items: []string{q.String()}, OrderGuaranteed: true, PageIO: 3}, nil
}

func (s *stubEngine) InsertDocument(_ context.Context, name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; ok {
		return fmt.Errorf("stub: document %s exists", name)
	}
	s.docs[name] = data
	return nil
}

func (s *stubEngine) ReplaceDocument(_ context.Context, name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[name] = data
	return nil
}

func (s *stubEngine) DeleteDocument(_ context.Context, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; !ok {
		return fmt.Errorf("stub: document %s does not exist", name)
	}
	delete(s.docs, name)
	return nil
}

// startServer boots a server on a kernel-assigned loopback port and
// returns it with a connected client. Cleanup shuts both down.
func startServer(t *testing.T, eng core.Engine, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(eng, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(srv.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestRemoteEngineEndToEnd drives every core.Engine method through the
// wire and checks the results match what the engine answers in-process.
func TestRemoteEngineEndToEnd(t *testing.T) {
	ctx := context.Background()
	eng := newStub()
	srv, c := startServer(t, eng, server.Config{})

	if c.Name() != "stub" {
		t.Fatalf("remote name %q, want the engine's own", c.Name())
	}
	if err := c.Supports(core.DCMD, core.Small); err != nil {
		t.Fatalf("Supports: %v", err)
	}

	db := &core.Database{Class: core.DCMD, Size: core.Small, Docs: []core.Doc{
		{Name: "order1.xml", Data: []byte("<order id=\"O1\"/>")},
	}}
	st, err := c.Load(ctx, db)
	if err != nil || st.Documents != 1 {
		t.Fatalf("Load: %+v, %v", st, err)
	}
	if err := c.BuildIndexes([]core.IndexSpec{{Class: core.DCMD, Target: "order/@id"}}); err != nil {
		t.Fatalf("BuildIndexes: %v", err)
	}

	res, err := c.Execute(ctx, core.Q5, core.Params{"X": "O1"})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want, _ := eng.Execute(ctx, core.Q5, core.Params{"X": "O1"})
	if len(res.Items) != 1 || res.Items[0] != want.Items[0] || !res.OrderGuaranteed || res.PageIO != want.PageIO {
		t.Fatalf("remote result %+v diverges from local %+v", res, want)
	}

	// Typed engine errors cross the wire.
	if _, err := c.Execute(ctx, core.Q20, nil); !errors.Is(err, core.ErrNoQuery) {
		t.Fatalf("Q20: %v, want ErrNoQuery", err)
	}

	// Updates.
	if err := c.InsertDocument(ctx, "new.xml", []byte("<x/>")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := c.InsertDocument(ctx, "new.xml", []byte("<x/>")); err == nil {
		t.Fatal("double insert did not fail")
	}
	if err := c.ReplaceDocument(ctx, "new.xml", []byte("<y/>")); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if err := c.DeleteDocument(ctx, "new.xml"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := c.DeleteDocument(ctx, "new.xml"); err == nil {
		t.Fatal("delete of a missing document did not fail")
	}

	c.ColdReset()
	if got := c.PageIO(); got != 77 {
		t.Fatalf("PageIO = %d, want 77", got)
	}

	// The client pooled its connection: sequential requests reuse it.
	if got := srv.Metrics().Counter("server.conn.accepted").Value(); got != 1 {
		t.Fatalf("server accepted %d connections for one sequential client, want 1", got)
	}
	if srv.Inflight() != 0 {
		t.Fatalf("inflight = %d after quiesce", srv.Inflight())
	}
}

// TestPerRequestTimeout: a client deadline rides the wire and cancels the
// engine call server-side, surfacing as context.DeadlineExceeded.
func TestPerRequestTimeout(t *testing.T) {
	eng := newStub()
	eng.delay = 2 * time.Second
	_, c := startServer(t, eng, server.Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Execute(ctx, core.Q1, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out query: %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v, deadline was 30ms", elapsed)
	}
}

// TestOverloadSheds: with MaxInflight=1 and a gated engine, concurrent
// requests beyond the slot are rejected with ErrOverloaded after the
// queue wait, and the admitted request still completes.
func TestOverloadSheds(t *testing.T) {
	eng := newStub()
	eng.gate = make(chan struct{})
	srv, _ := startServer(t, eng, server.Config{
		MaxInflight: 1,
		QueueWait:   20 * time.Millisecond,
	})
	// Retries disabled: this test counts server-side rejections 1:1 with
	// client-visible errors, so the client's overload-retry must be off.
	c, err := client.Dial(srv.Addr().String(), client.Config{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Execute(context.Background(), core.Q1, nil)
			errs <- err
		}()
	}

	// All but the slot holder must shed within the queue wait.
	var overloaded, pending int
	for i := 0; i < n-1; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, wire.ErrOverloaded) {
				t.Fatalf("shed request returned %v, want ErrOverloaded", err)
			}
			overloaded++
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d neither completed nor shed", i)
		}
	}

	close(eng.gate) // release the admitted request
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
		pending++
	case <-time.After(5 * time.Second):
		t.Fatal("admitted request hung")
	}
	if overloaded < 1 {
		t.Fatal("no request observed ErrOverloaded")
	}
	if srv.Inflight() != 0 {
		t.Fatalf("inflight = %d after overload storm", srv.Inflight())
	}
	if srv.Metrics().Counter("server.req.rejected").Value() != int64(overloaded) {
		t.Fatalf("rejected counter %d, want %d",
			srv.Metrics().Counter("server.req.rejected").Value(), overloaded)
	}
}

// TestGracefulDrain: Shutdown lets the in-flight request finish and
// deliver its response, rejects new work, closes the engine, and leaves
// the admission counter at zero.
func TestGracefulDrain(t *testing.T) {
	eng := newStub()
	eng.gate = make(chan struct{}, 1)
	srv, c := startServer(t, eng, server.Config{})

	inflightDone := make(chan error, 1)
	go func() {
		_, err := c.Execute(context.Background(), core.Q1, nil)
		inflightDone <- err
	}()
	// Wait until the request holds its admission slot.
	for i := 0; srv.Inflight() == 0; i++ {
		if i > 500 {
			t.Fatal("request never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Drain has begun (or is about to): release the in-flight request.
	time.Sleep(10 * time.Millisecond)
	eng.gate <- struct{}{}

	if err := <-inflightDone; err != nil {
		t.Fatalf("in-flight request did not survive the drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !eng.closed.Load() {
		t.Fatal("engine not closed after drain")
	}
	if srv.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", srv.Inflight())
	}

	// The drained server accepts no new work: a fresh request fails typed
	// (connection refused or ErrShutdown, depending on timing).
	if _, err := c.Execute(context.Background(), core.Q1, nil); err == nil {
		t.Fatal("request succeeded against a drained server")
	}
	// Shutdown is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRemoteDriverMatchesInProcessSchema: the closed-loop driver over a
// remote engine produces a report with the same shape and accounting as
// the same run in-process — the acceptance criterion that remote sweeps
// share the report schema.
func TestRemoteDriverMatchesInProcessSchema(t *testing.T) {
	ctx := context.Background()
	mix := []core.QueryID{core.Q1, core.Q5, core.Q8}
	cfg := driver.Config{
		Clients:      2,
		OpsPerClient: 8,
		Seed:         3,
		Queries:      mix,
		Think:        -1,
	}

	local, err := driver.Run(ctx, newStub(), core.DCMD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, c := startServer(t, newStub(), server.Config{})
	remote, err := driver.Run(ctx, c, core.DCMD, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if remote.Engine != local.Engine {
		t.Errorf("engine label %q, want %q", remote.Engine, local.Engine)
	}
	if remote.Ops != local.Ops || remote.Errs != local.Errs || remote.Canceled != local.Canceled {
		t.Errorf("accounting diverges: remote ops=%d errs=%d canceled=%d, local ops=%d errs=%d canceled=%d",
			remote.Ops, remote.Errs, remote.Canceled, local.Ops, local.Errs, local.Canceled)
	}
	if len(remote.Mix) != len(local.Mix) || len(remote.Cells) != len(local.Cells) {
		t.Errorf("schema diverges: remote mix=%v cells=%d, local mix=%v cells=%d",
			remote.Mix, len(remote.Cells), local.Mix, len(local.Cells))
	}
	for i := range remote.Cells {
		if remote.Cells[i].Query != local.Cells[i].Query || remote.Cells[i].Count != local.Cells[i].Count {
			t.Errorf("cell %d: remote %+v, local %+v", i, remote.Cells[i], local.Cells[i])
		}
	}
}

// TestDriverThroughOverloadAndDrain is the -race acceptance test: N
// driver clients push a MaxInflight=1 server into overload (observing at
// least one ErrOverloaded), then a graceful drain completes with every
// in-flight request answered or typed-failed — nothing hangs.
func TestDriverThroughOverloadAndDrain(t *testing.T) {
	ctx := context.Background()
	eng := newStub()
	eng.delay = 3 * time.Millisecond
	srv := server.New(eng, server.Config{
		MaxInflight: 1,
		QueueWait:   time.Millisecond,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(srv.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := driver.Run(ctx, c, core.DCMD, driver.Config{
		Clients:      8,
		OpsPerClient: 10,
		Queries:      []core.QueryID{core.Q1, core.Q5},
		NoWarmup:     true,
		Think:        -1,
	})
	// The run must complete (no hang) and must have been shed at least
	// once: 8 clients into 1 slot with a 1ms queue wait cannot all fit.
	if rep.Ops != 80 {
		t.Fatalf("driver completed %d/80 ops", rep.Ops)
	}
	if rep.Errs < 1 {
		t.Fatal("overloaded server shed no requests")
	}
	if err == nil || !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("driver error %v, want to observe ErrOverloaded", err)
	}
	if srv.Inflight() != 0 {
		t.Fatalf("inflight = %d after the storm", srv.Inflight())
	}

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		t.Fatalf("drain after overload: %v", err)
	}
	if !eng.closed.Load() {
		t.Fatal("engine not closed")
	}
}
