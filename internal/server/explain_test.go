package server_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/server"
)

// explainStub is the stub engine plus core.Explainer: it answers a fixed
// plan tree and records the query it was asked about.
type explainStub struct {
	*stubEngine
	node *core.PlanNode
}

func (s *explainStub) Explain(_ context.Context, q core.QueryID, _ core.Params) (*core.PlanNode, error) {
	if q == core.Q20 {
		return nil, core.ErrNoQuery
	}
	return s.node, nil
}

func testPlan() *core.PlanNode {
	return &core.PlanNode{
		Op: "limit", Target: "1", Detail: "limit-pushdown",
		Children: []*core.PlanNode{{
			Op: "index-probe", Target: "item/@id", Detail: "@id = $X",
			EstPages: 3, EstRows: 1,
		}},
	}
}

// TestExplainOverWire: a remote Explain returns the engine's plan tree
// bit-for-bit, over both the plain and the pipelined transport.
func TestExplainOverWire(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		eng := &explainStub{stubEngine: newStub(), node: testPlan()}
		srv := server.New(eng, server.Config{})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := client.Dial(srv.Addr().String(), client.Config{Pipeline: pipeline})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		got, err := c.Explain(context.Background(), core.Q5, core.Params{"X": "I1"})
		if err != nil {
			t.Fatalf("pipeline=%v: %v", pipeline, err)
		}
		if !reflect.DeepEqual(got, eng.node) {
			t.Fatalf("pipeline=%v: plan drifted:\ngot  %+v\nwant %+v", pipeline, got, eng.node)
		}
		// Engine errors still cross typed.
		if _, err := c.Explain(context.Background(), core.Q20, nil); !errors.Is(err, core.ErrNoQuery) {
			t.Fatalf("pipeline=%v: Q20 err = %v, want ErrNoQuery", pipeline, err)
		}
	}
}

// TestExplainEngineWithoutExplainer: serving an engine that cannot
// explain answers StatusNoExplain, which the client surfaces as
// core.ErrNoExplain — same sentinel as a local opaque engine.
func TestExplainEngineWithoutExplainer(t *testing.T) {
	_, c := startServer(t, newStub(), server.Config{})
	_, err := c.Explain(context.Background(), core.Q5, nil)
	if !errors.Is(err, core.ErrNoExplain) {
		t.Fatalf("err = %v, want ErrNoExplain", err)
	}
}
