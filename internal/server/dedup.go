// The idempotency dedup table: the server-side half of exactly-once
// updates. Every successful keyed update records its response frame here
// (and its redo record in the durable journal); a retry carrying the same
// key — whether it raced the original on a live server or arrived after a
// crash/restart — gets the original response back and never touches the
// engine. Entries are rebuilt from the journal's keyed records by Reopen,
// so the table survives process death exactly as far as the acknowledged
// updates it guards do.
//
// GC: per-client seqs are monotonic and a client retries only its most
// recent update (updates are serial per logical op), so the table keeps a
// bounded window of the highest seqs per client and drops the oldest
// beyond it. A retry can therefore only miss the table if the client
// issued DedupPerClient newer updates in between — which the serial
// client protocol makes impossible.
package server

import (
	"sync"

	"xbench/internal/wire"
)

// clientWindow holds one client's recent outcomes, oldest first.
type clientWindow struct {
	frames map[uint64]wire.Frame // seq -> response frame
	order  []uint64              // insertion order, for GC
}

// dedupTable maps idempotency keys to the response frames their updates
// produced. Safe for concurrent use.
type dedupTable struct {
	mu      sync.Mutex
	perCap  int
	clients map[uint64]*clientWindow
	size    int
}

func newDedupTable(perClientCap int) *dedupTable {
	if perClientCap <= 0 {
		perClientCap = 4096
	}
	return &dedupTable{perCap: perClientCap, clients: map[uint64]*clientWindow{}}
}

// lookup returns the recorded response for key, if any.
func (d *dedupTable) lookup(key wire.IdemKey) (wire.Frame, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cw := d.clients[key.Client]
	if cw == nil {
		return wire.Frame{}, false
	}
	f, ok := cw.frames[key.Seq]
	return f, ok
}

// record stores the response for key, evicting the client's oldest entry
// beyond the per-client window.
func (d *dedupTable) record(key wire.IdemKey, f wire.Frame) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cw := d.clients[key.Client]
	if cw == nil {
		cw = &clientWindow{frames: map[uint64]wire.Frame{}}
		d.clients[key.Client] = cw
	}
	if _, dup := cw.frames[key.Seq]; dup {
		return // a racing retry already recorded it
	}
	cw.frames[key.Seq] = f
	cw.order = append(cw.order, key.Seq)
	d.size++
	for len(cw.order) > d.perCap {
		old := cw.order[0]
		cw.order = cw.order[1:]
		delete(cw.frames, old)
		d.size--
	}
}

// entries returns the total number of recorded outcomes (for tests and
// metrics).
func (d *dedupTable) entries() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}
