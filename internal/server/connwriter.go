package server

import (
	"net"
	"sync"

	"xbench/internal/wire"
)

// connWriter batches a connection's response frames: concurrent request
// goroutines append their frames to the forming batch, and a single
// flusher goroutine writes each sealed batch with one syscall. Responses
// produced while a flush is in progress accumulate into the next batch,
// so batching deepens exactly when the connection is busiest — the
// server-side mirror of the client mux's writeLoop (see DESIGN.md §13).
//
// write blocks until the batch containing the caller's frame has been
// handed to the kernel. That property is what lets serveConn keep the
// drain-barrier contract: a request's admission slot is released only
// after write returns, so Shutdown's semaphore sweep still proves every
// admitted request's response reached the socket before connections are
// severed.
//
// Batch buffers cycle through wire.GetBuf/PutBuf. Response payloads are
// copied into the batch inside write, so callers may recycle pooled
// payload buffers as soon as write returns. (Request payloads are never
// pooled at all: decoded requests alias them — see internal/wire
// dec.bytes — and the dedup table retains recorded update frames
// indefinitely.)
type connWriter struct {
	conn net.Conn

	mu       sync.Mutex
	cur      *respBatch // forming batch, nil when none
	flushing bool       // a flushLoop goroutine is draining batches
	err      error      // first failure; poisons the writer
}

// respBatch is one sealed-together group of response frames.
type respBatch struct {
	buf  *[]byte
	done chan struct{} // closed after the batch's conn.Write returned
	err  error         // set before done is closed
}

func newConnWriter(conn net.Conn) *connWriter {
	return &connWriter{conn: conn}
}

// write appends f to the forming batch and blocks until that batch has
// been written to the connection. An encoding failure (oversized frame)
// poisons the writer — the stream cannot carry the response, so the
// connection must drop, exactly as a failed WriteFrame did when
// responses were written one at a time.
func (w *connWriter) write(f wire.Frame) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.cur == nil {
		w.cur = &respBatch{buf: wire.GetBuf(), done: make(chan struct{})}
	}
	b, err := wire.AppendFrame(*w.cur.buf, f)
	if err != nil {
		w.err = err // AppendFrame left the batch intact; other riders still flush
		w.mu.Unlock()
		return err
	}
	*w.cur.buf = b
	bt := w.cur
	if !w.flushing {
		w.flushing = true
		go w.flushLoop()
	}
	w.mu.Unlock()
	<-bt.done
	return bt.err
}

// flushLoop drains forming batches one at a time until none formed while
// the previous write was in flight, then exits — an idle connection
// costs no flusher goroutine.
func (w *connWriter) flushLoop() {
	for {
		w.mu.Lock()
		bt := w.cur
		w.cur = nil
		if bt == nil {
			w.flushing = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
		_, err := w.conn.Write(*bt.buf)
		wire.PutBuf(bt.buf)
		bt.buf = nil
		if err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.mu.Unlock()
		}
		bt.err = err
		close(bt.done)
	}
}
