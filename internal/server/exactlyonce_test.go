package server_test

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xbench/internal/core"
	"xbench/internal/server"
	"xbench/internal/wire"
)

// rawConn speaks frames directly so tests can replay byte-identical
// requests — the exact thing a retrying client does after a lost
// response.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	id   uint64
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn}
}

func (r *rawConn) do(op wire.Op, payload []byte) wire.Frame {
	r.t.Helper()
	r.id++
	if err := wire.WriteFrame(r.conn, wire.Frame{Kind: byte(op), ID: r.id, Payload: payload}); err != nil {
		r.t.Fatal(err)
	}
	resp, err := wire.ReadFrame(r.conn)
	if err != nil {
		r.t.Fatal(err)
	}
	return resp
}

func updatePayload(op wire.Op, name string, data []byte, key wire.IdemKey) []byte {
	return wire.EncodeUpdateRequest(wire.UpdateRequest{Name: name, Data: data, Key: key})
}

// TestDedupReplaysOriginalResult: re-sending a keyed insert (the wire
// image of a client retry) answers StatusOK from the dedup table instead
// of re-applying — the stub would reject a second insert of the same
// name, so a non-OK second response means the dedup missed.
func TestDedupReplaysOriginalResult(t *testing.T) {
	eng := newStub()
	srv, _ := startServer(t, eng, server.Config{})
	rc := dialRaw(t, srv.Addr().String())

	key := wire.IdemKey{Client: 0xC0FFEE, Seq: 1}
	payload := updatePayload(wire.OpInsert, "order-update-1.xml", []byte("<order/>"), key)
	if resp := rc.do(wire.OpInsert, payload); wire.Status(resp.Kind) != wire.StatusOK {
		t.Fatalf("first insert: status %d (%s)", resp.Kind, resp.Payload)
	}
	for i := 0; i < 3; i++ { // retries, byte-identical
		if resp := rc.do(wire.OpInsert, payload); wire.Status(resp.Kind) != wire.StatusOK {
			t.Fatalf("retry %d re-applied or failed: status %d (%s)", i, resp.Kind, resp.Payload)
		}
	}
	if got := srv.Metrics().Counter("server.req.deduped").Value(); got != 3 {
		t.Fatalf("deduped counter = %d, want 3", got)
	}
	eng.mu.Lock()
	n := len(eng.docs)
	eng.mu.Unlock()
	if n != 1 {
		t.Fatalf("engine holds %d documents, want 1", n)
	}

	// A different seq is a different logical update and must re-execute:
	// the stub rejects the duplicate name, proving the engine was reached.
	fresh := updatePayload(wire.OpInsert, "order-update-1.xml", []byte("<order/>"), wire.IdemKey{Client: 0xC0FFEE, Seq: 2})
	if resp := rc.do(wire.OpInsert, fresh); wire.Status(resp.Kind) == wire.StatusOK {
		t.Fatal("distinct key was deduped")
	}
}

// TestUnkeyedUpdatesBypassDedup: v1-style updates (no key) keep their old
// semantics — every send reaches the engine.
func TestUnkeyedUpdatesBypassDedup(t *testing.T) {
	eng := newStub()
	srv, _ := startServer(t, eng, server.Config{})
	rc := dialRaw(t, srv.Addr().String())
	payload := updatePayload(wire.OpInsert, "a.xml", []byte("<a/>"), wire.IdemKey{})
	if resp := rc.do(wire.OpInsert, payload); wire.Status(resp.Kind) != wire.StatusOK {
		t.Fatalf("first unkeyed insert: status %d", resp.Kind)
	}
	if resp := rc.do(wire.OpInsert, payload); wire.Status(resp.Kind) == wire.StatusOK {
		t.Fatal("second unkeyed insert of the same name succeeded (was deduped?)")
	}
	if got := srv.Metrics().Counter("server.req.deduped").Value(); got != 0 {
		t.Fatalf("deduped counter = %d, want 0", got)
	}
}

// TestConcurrentRetriesApplyOnce: simultaneous byte-identical keyed
// retries — the wire image of an impatient client re-sending before the
// original answered — must apply exactly once, even while the original
// is still inside its commit window (applied, journal batch syncing).
// Racing retries either hit the dedup table or join the in-flight
// commit; both paths answer with the original's result and count as
// deduped. This is the regression test for the window where the update
// had applied but was not yet recorded.
func TestConcurrentRetriesApplyOnce(t *testing.T) {
	db := &core.Database{Class: core.DCMD, Size: core.Small}
	journal := filepath.Join(t.TempDir(), "updates.journal")
	eng := newStub()
	srv, _, err := server.Reopen(eng, db, nil, journal, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	payload := updatePayload(wire.OpInsert, "order-update-1.xml", []byte("<order/>"), wire.IdemKey{Client: 9, Seq: 1})
	const retries = 16
	var wg sync.WaitGroup
	statuses := make([]wire.Status, retries)
	for i := 0; i < retries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			if err := wire.WriteFrame(conn, wire.Frame{Kind: byte(wire.OpInsert), ID: 1, Payload: payload}); err != nil {
				return
			}
			resp, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			statuses[i] = wire.Status(resp.Kind)
		}(i)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != wire.StatusOK {
			t.Fatalf("retry %d: status %d, want OK (a racing retry re-applied)", i, st)
		}
	}
	eng.mu.Lock()
	n := len(eng.docs)
	eng.mu.Unlock()
	if n != 1 {
		t.Fatalf("engine holds %d documents after %d racing retries, want 1", n, retries)
	}
	if got := srv.Metrics().Counter("server.req.deduped").Value(); got != retries-1 {
		t.Fatalf("deduped counter = %d, want %d", got, retries-1)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The journal must hold the update exactly once.
	_, n2, err := server.Reopen(newStub(), db, nil, journal, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 1 {
		t.Fatalf("journal replayed %d records, want 1", n2)
	}
}

// TestPipelinedConnRespondsOutOfOrder: a connection carrying several
// in-flight requests is served concurrently — a later cheap request
// (ping) must be answered while an earlier gated query is still
// executing, and responses are matched by frame ID, not arrival order. A
// sequential per-connection server deadlocks here.
func TestPipelinedConnRespondsOutOfOrder(t *testing.T) {
	eng := newStub()
	eng.gate = make(chan struct{})
	srv, _ := startServer(t, eng, server.Config{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	gated := wire.EncodeQueryRequest(wire.QueryRequest{Query: core.Q1})
	if err := wire.WriteFrame(conn, wire.Frame{Kind: byte(wire.OpQuery), ID: 1, Payload: gated}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.Frame{Kind: byte(wire.OpPing), ID: 2}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("ping behind a blocked query never answered: %v", err)
	}
	if resp.ID != 2 {
		t.Fatalf("first response has ID %d, want 2 (the ping)", resp.ID)
	}
	eng.gate <- struct{}{} // release the query
	resp, err = wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 {
		t.Fatalf("second response has ID %d, want 1 (the released query)", resp.ID)
	}
}

// TestReopenRecoversJournalAndDedup: acknowledged updates and their
// idempotency keys survive a full server death. A second Reopen on the
// same journal rebuilds engine state (load + replay) and the dedup table,
// so a client retrying across the restart gets the original answer and
// the update applies exactly once.
func TestReopenRecoversJournalAndDedup(t *testing.T) {
	db := &core.Database{Class: core.DCMD, Size: core.Small, Docs: []core.Doc{
		{Name: "seed.xml", Data: []byte("<seed/>")},
	}}
	journal := filepath.Join(t.TempDir(), "updates.journal")

	e1 := newStub()
	srv1, n, err := server.Reopen(e1, db, nil, journal, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh journal replayed %d records", n)
	}
	if err := srv1.Start(); err != nil {
		t.Fatal(err)
	}
	rc := dialRaw(t, srv1.Addr().String())
	ins := updatePayload(wire.OpInsert, "order-update-1.xml", []byte("<order rev='0'/>"), wire.IdemKey{Client: 5, Seq: 1})
	for i, p := range [][]byte{
		ins,
		updatePayload(wire.OpReplace, "order-update-1.xml", []byte("<order rev='1'/>"), wire.IdemKey{Client: 5, Seq: 2}),
		updatePayload(wire.OpInsert, "order-update-2.xml", []byte("<order/>"), wire.IdemKey{Client: 5, Seq: 3}),
		updatePayload(wire.OpDelete, "order-update-2.xml", nil, wire.IdemKey{Client: 5, Seq: 4}),
	} {
		op := []wire.Op{wire.OpInsert, wire.OpReplace, wire.OpInsert, wire.OpDelete}[i]
		if resp := rc.do(op, p); wire.Status(resp.Kind) != wire.StatusOK {
			t.Fatalf("update %d: status %d (%s)", i, resp.Kind, resp.Payload)
		}
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, same journal.
	e2 := newStub()
	srv2, n, err := server.Reopen(e2, db, nil, journal, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records, want 4", n)
	}
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })

	e2.mu.Lock()
	rev1, ok1 := e2.docs["order-update-1.xml"]
	_, ok2 := e2.docs["order-update-2.xml"]
	e2.mu.Unlock()
	if !ok1 || string(rev1) != "<order rev='1'/>" {
		t.Fatalf("order-update-1.xml after recovery: %q (present=%v)", rev1, ok1)
	}
	if ok2 {
		t.Fatal("deleted order-update-2.xml resurrected by recovery")
	}

	// A retry of the pre-crash insert must dedup, not re-apply.
	rc2 := dialRaw(t, srv2.Addr().String())
	if resp := rc2.do(wire.OpInsert, ins); wire.Status(resp.Kind) != wire.StatusOK {
		t.Fatalf("cross-restart retry re-applied: status %d (%s)", resp.Kind, resp.Payload)
	}
	if got := srv2.Metrics().Counter("server.req.deduped").Value(); got != 1 {
		t.Fatalf("deduped counter after restart retry = %d, want 1", got)
	}
}
