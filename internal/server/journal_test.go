package server_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/server"
	"xbench/internal/updatelog"
	"xbench/internal/wire"
)

// tinyDB is a minimal database for Reopen-based tests.
func tinyDB() *core.Database {
	return &core.Database{
		Class: core.DCMD,
		Size:  core.Small,
		Docs:  []core.Doc{{Name: "seed.xml", Data: []byte("<seed/>")}},
	}
}

// startJournaled boots a crash-recoverable server (Reopen) on a fresh
// journal and returns it with a connected client.
func startJournaled(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	jp := filepath.Join(t.TempDir(), "journal.log")
	srv, _, err := server.Reopen(newStub(), tinyDB(), nil, jp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(srv.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestJournalPullShipsCommittedUpdates drives keyed updates through a
// journaled server and pulls them back over OpJournal: the shipped window
// reproduces the updates in commit order, carries their idempotency keys,
// and an up-to-date poller gets an empty window.
func TestJournalPullShipsCommittedUpdates(t *testing.T) {
	_, c := startJournaled(t, server.Config{})
	ctx := context.Background()

	if err := c.InsertDocument(ctx, "a.xml", []byte("<a/>")); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceDocument(ctx, "a.xml", []byte("<a v=\"2\"/>")); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteDocument(ctx, "a.xml"); err != nil {
		t.Fatal(err)
	}

	resp, err := c.JournalPull(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Next != 3 || len(resp.Records) != 3 {
		t.Fatalf("pull: next=%d records=%d, want 3/3", resp.Next, len(resp.Records))
	}
	wantKinds := []updatelog.Kind{updatelog.KindInsert, updatelog.KindReplace, updatelog.KindDelete}
	for i, rec := range resp.Records {
		if rec.Kind != wantKinds[i] || rec.Name != "a.xml" {
			t.Fatalf("record %d: %+v", i, rec)
		}
		if rec.Client != c.ClientID() || rec.Seq == 0 {
			t.Fatalf("record %d lost its idempotency key: %+v", i, rec)
		}
	}

	// Caught up: polling from Next returns an empty window, same Next.
	resp, err = c.JournalPull(ctx, resp.Next)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Next != 3 || len(resp.Records) != 0 {
		t.Fatalf("caught-up pull: %+v", resp)
	}

	// Replaying the shipped window against a fresh engine reproduces the
	// primary's state transitions (this is exactly what a replica does).
	resp, _ = c.JournalPull(ctx, 0)
	replica := newStub()
	if err := updatelog.Apply(ctx, replica, resp.Records); err != nil {
		t.Fatalf("replica apply: %v", err)
	}
}

// TestJournalPullWithoutJournal pins the feature-probe contract: a server
// running without a journal answers OpJournal with wire.ErrBadRequest.
func TestJournalPullWithoutJournal(t *testing.T) {
	_, c := startServer(t, newStub(), server.Config{})
	if _, err := c.JournalPull(context.Background(), 0); !errors.Is(err, wire.ErrBadRequest) {
		t.Fatalf("journal pull on journal-less server: %v, want ErrBadRequest", err)
	}
}

// TestReadOnlyServer verifies a replica-mode server: queries answer,
// every mutating op is rejected with core.ErrReadOnly.
func TestReadOnlyServer(t *testing.T) {
	eng := newStub()
	if _, err := eng.Load(context.Background(), tinyDB()); err != nil {
		t.Fatal(err)
	}
	_, c := startServer(t, eng, server.Config{ReadOnly: true})
	ctx := context.Background()

	if _, err := c.Execute(ctx, core.Q1, nil); err != nil {
		t.Fatalf("read on read-only server: %v", err)
	}
	if err := c.InsertDocument(ctx, "x.xml", []byte("<x/>")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("insert: %v, want ErrReadOnly", err)
	}
	if err := c.ReplaceDocument(ctx, "x.xml", []byte("<x/>")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replace: %v, want ErrReadOnly", err)
	}
	if err := c.DeleteDocument(ctx, "x.xml"); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("delete: %v, want ErrReadOnly", err)
	}
	if _, err := c.Load(ctx, tinyDB()); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("load: %v, want ErrReadOnly", err)
	}
	if err := c.BuildIndexes(nil); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("indexes: %v, want ErrReadOnly", err)
	}
}

// TestIdemKeyPassesThroughProxy builds a two-hop chain — client → front
// server whose engine is a wire client → journaled backend — and asserts
// the backend journals the ORIGINAL client's idempotency key, not one
// minted by the forwarding hop. This is the property that makes
// exactly-once hold end-to-end through a router tier.
func TestIdemKeyPassesThroughProxy(t *testing.T) {
	backendSrv, backendC := startJournaled(t, server.Config{})
	_ = backendSrv

	// The front server serves the backend's client as its "engine".
	proxyEng, err := client.Dial(backendC.Addr(), client.Config{ClientID: 999})
	if err != nil {
		t.Fatal(err)
	}
	front := server.New(proxyEng, server.Config{})
	if err := front.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { front.Close() })

	const originID = 424242
	c, err := client.Dial(front.Addr().String(), client.Config{ClientID: originID})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ctx := context.Background()
	if err := c.InsertDocument(ctx, "routed.xml", []byte("<r/>")); err != nil {
		t.Fatal(err)
	}
	resp, err := backendC.JournalPull(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != 1 {
		t.Fatalf("backend journaled %d records, want 1", len(resp.Records))
	}
	if got := resp.Records[0].Client; got != originID {
		t.Fatalf("backend journaled client %d, want the origin's %d (key minted by proxy instead of passed through)", got, originID)
	}
}
