package server_test

import (
	"context"
	"testing"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/driver"
	"xbench/internal/server"
	"xbench/internal/workload"
)

// TestDriverSweepSurvivesDeadPrimary is the failover acceptance check: a
// full closed-loop driver run against a TWO-address client whose primary
// server is already dead must complete with zero driver-visible errors —
// the dial failures trip the primary's breaker and every op lands on the
// live secondary, invisibly to the workload.
func TestDriverSweepSurvivesDeadPrimary(t *testing.T) {
	// Two equivalent replicas; the primary dies before the sweep starts.
	primary, _ := startServer(t, newStub(), server.Config{})
	secondary, _ := startServer(t, newStub(), server.Config{})
	primaryAddr := primary.Addr().String()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := client.DialAddrs([]string{primaryAddr, secondary.Addr().String()}, client.Config{
		Retries:       8,
		Backoff:       time.Millisecond,
		FailThreshold: 2,
		Cooldown:      time.Hour, // dead primary stays condemned for the whole run
		DialTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialAddrs with dead primary: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	rep, err := driver.Run(context.Background(), c, core.DCMD, driver.Config{
		Clients:        4,
		OpsPerClient:   25,
		Seed:           9,
		Queries:        []core.QueryID{core.Q1, core.Q5},
		NoWarmup:       true,
		Think:          -1,
		UpdateFraction: 0.3,
		UpdateOps:      []workload.UpdateOp{workload.U1, workload.U2},
	})
	if err != nil {
		t.Fatalf("driver run over failover client: %v", err)
	}
	if rep.Errs != 0 || rep.UpdateErrs != 0 || rep.Canceled != 0 {
		t.Fatalf("driver saw errors through failover: errs=%d updateErrs=%d canceled=%d",
			rep.Errs, rep.UpdateErrs, rep.Canceled)
	}
	if rep.Ops != 100 {
		t.Fatalf("ops = %d, want 100", rep.Ops)
	}
	if rep.Updates == 0 {
		t.Fatal("mixed run performed no updates; the keyed-update failover path went unexercised")
	}
}
