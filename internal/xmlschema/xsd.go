package xmlschema

import (
	"fmt"
	"strings"
)

// XSD renders the schema as a W3C XML Schema document. XBench's support
// for XML Schema (not just DTDs) is one of its differentiators from
// XMach-1, XMark and XOO7 in the paper's related-work comparison; the
// tech report ships both forms, and so do we.
func (s *Schema) XSD() string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" elementFormDefault="qualified">` + "\n")
	// Global element declarations for every root; nested elements are
	// declared inline, except recursive types which get a named complex
	// type so the self-reference is expressible.
	named := map[string]bool{}
	collectRecursive(s.Root, named)
	for _, r := range s.ExtraRoots {
		collectRecursive(r, named)
	}
	emitted := map[string]bool{}
	var emitNamed func(e *Elem)
	emitNamed = func(e *Elem) {
		if named[e.Name] && !emitted[e.Name] {
			emitted[e.Name] = true
			fmt.Fprintf(&b, `  <xs:complexType name="%sType"%s>`+"\n", e.Name, mixedAttr(e))
			writeContent(&b, e, "    ", named)
			b.WriteString("  </xs:complexType>\n")
		}
		for _, c := range e.Children {
			emitNamed(c)
		}
	}
	emitNamed(s.Root)
	for _, r := range s.ExtraRoots {
		emitNamed(r)
	}
	writeElement(&b, s.Root, "  ", true, named)
	for _, r := range s.ExtraRoots {
		writeElement(&b, r, "  ", true, named)
	}
	b.WriteString("</xs:schema>\n")
	return b.String()
}

func collectRecursive(e *Elem, named map[string]bool) {
	if e.Recursive {
		named[e.Name] = true
	}
	for _, c := range e.Children {
		collectRecursive(c, named)
	}
}

func mixedAttr(e *Elem) string {
	if e.Mixed {
		return ` mixed="true"`
	}
	return ""
}

func occursAttrs(o Occurs, root bool) string {
	if root {
		return ""
	}
	switch o {
	case Opt:
		return ` minOccurs="0"`
	case Many:
		return ` maxOccurs="unbounded"`
	case Any:
		return ` minOccurs="0" maxOccurs="unbounded"`
	}
	return ""
}

func writeElement(b *strings.Builder, e *Elem, indent string, root bool, named map[string]bool) {
	occurs := occursAttrs(e.Occurs, root)
	if named[e.Name] {
		fmt.Fprintf(b, `%s<xs:element name="%s" type="%sType"%s/>`+"\n",
			indent, e.Name, e.Name, occurs)
		return
	}
	if (e.Text || len(e.Children) == 0) && len(e.Attrs) == 0 && !e.Mixed {
		fmt.Fprintf(b, `%s<xs:element name="%s" type="xs:string"%s/>`+"\n",
			indent, e.Name, occurs)
		return
	}
	fmt.Fprintf(b, `%s<xs:element name="%s"%s>`+"\n", indent, e.Name, occurs)
	fmt.Fprintf(b, `%s  <xs:complexType%s>`+"\n", indent, mixedAttr(e))
	writeContent(b, e, indent+"    ", named)
	fmt.Fprintf(b, "%s  </xs:complexType>\n", indent)
	fmt.Fprintf(b, "%s</xs:element>\n", indent)
}

// writeContent writes the sequence of children and attribute declarations
// of a complex type.
func writeContent(b *strings.Builder, e *Elem, indent string, named map[string]bool) {
	hasSeq := len(e.Children) > 0 || e.Recursive
	if !hasSeq && (e.Text || len(e.Children) == 0) && len(e.Attrs) > 0 && !e.Mixed {
		// Text content plus attributes: simple content extension.
		fmt.Fprintf(b, "%s<xs:simpleContent>\n", indent)
		fmt.Fprintf(b, `%s  <xs:extension base="xs:string">`+"\n", indent)
		writeAttrs(b, e, indent+"    ")
		fmt.Fprintf(b, "%s  </xs:extension>\n", indent)
		fmt.Fprintf(b, "%s</xs:simpleContent>\n", indent)
		return
	}
	if hasSeq {
		fmt.Fprintf(b, "%s<xs:sequence>\n", indent)
		for _, c := range e.Children {
			writeElement(b, c, indent+"  ", false, named)
		}
		if e.Recursive {
			fmt.Fprintf(b, `%s  <xs:element name="%s" type="%sType" minOccurs="0" maxOccurs="unbounded"/>`+"\n",
				indent, e.Name, e.Name)
		}
		fmt.Fprintf(b, "%s</xs:sequence>\n", indent)
	}
	writeAttrs(b, e, indent)
}

func writeAttrs(b *strings.Builder, e *Elem, indent string) {
	for _, a := range e.Attrs {
		use := "optional"
		typ := "xs:string"
		if a == "id" {
			use = "required"
			typ = "xs:ID"
		}
		fmt.Fprintf(b, `%s<xs:attribute name="%s" type="%s" use="%s"/>`+"\n",
			indent, a, typ, use)
	}
}
