package xmlschema

import "xbench/internal/core"

// dictionarySchema is the TC/SD class (paper Figure 1): one big
// dictionary.xml with numerous word entries, deep nesting and references
// between entries. The qt (quotation text) element carries mixed content.
var dictionarySchema = &Schema{
	Class:   core.TCSD,
	DocName: "dictionary.xml",
	Root: El("dictionary", One,
		El("entry", Many,
			TextEl("hw", One),  // headword — indexed per Table 3
			TextEl("pr", Opt),  // pronunciation
			TextEl("pos", One), // part of speech
			El("etym", Opt, // etymology with optional cross references
				TextEl("lang", Opt),
				TextEl("cr", Any).WithAttrs("target"),
			).WithMixed(),
			El("sense", Many,
				TextEl("def", One),
				TextEl("cr", Any).WithAttrs("target"),
				El("qp", Any, // quotation paragraph
					El("q", Many,
						TextEl("qd", One),  // quotation date
						TextEl("a", One),   // quotation author
						TextEl("loc", One), // quotation location
						El("qt", One, // quotation text, mixed content
							TextEl("i", Any),
							TextEl("b", Any),
						).WithMixed(),
					),
				),
			),
		).WithAttrs("id"),
	),
}

// articleSchema is the TC/MD class (paper Figure 2): numerous relatively
// small text-centric articleXXX.xml documents with loose schemas, optional
// parts everywhere, recursive sections and references between documents.
var articleSchema = &Schema{
	Class:   core.TCMD,
	DocName: "articleXXX.xml",
	Root: El("article", One,
		El("prolog", One,
			TextEl("title", One),
			TextEl("genre", Opt),
			El("dateline", Opt,
				TextEl("date", One),
				TextEl("country", Opt),
			),
			El("authors", One,
				El("author", Many,
					TextEl("name", One),
					TextEl("affiliation", Opt),
					TextEl("contact", Opt), // may be empty — exercised by Q15
					TextEl("bio", Opt),
				),
			),
			El("abstract", Opt,
				TextEl("p", Many),
			),
			El("keywords", Opt,
				TextEl("kw", Many),
			),
		),
		El("body", One,
			El("sec", Many,
				TextEl("heading", Opt),
				TextEl("p", Any),
			).WithRecursive().WithAttrs("id"),
		),
		El("epilog", Opt,
			El("references", Opt,
				TextEl("a_id", Many).WithAttrs("target"),
			),
		),
	).WithAttrs("id"), // article/@id — indexed per Table 3
}

// catalogSchema is the DC/SD class (paper Figure 3): one catalog.xml built
// by recursively joining the TPC-W tables ITEM (base), AUTHOR, AUTHOR_2,
// PUBLISHER, ADDRESS and COUNTRY, which adds depth to the document.
var catalogSchema = &Schema{
	Class:   core.DCSD,
	DocName: "catalog.xml",
	Root: El("catalog", One,
		El("item", Many,
			TextEl("title", One),
			TextEl("date_of_release", One), // indexed per Table 3
			TextEl("subject", One),
			TextEl("description", Opt),
			El("attributes", One,
				TextEl("srp", One), // suggested retail price
				TextEl("cost", One),
				TextEl("avail", One),
				TextEl("isbn", One),
				TextEl("number_of_pages", One), // cast target of Q20
				TextEl("backing", One),
				El("dimensions", One,
					TextEl("length", One),
					TextEl("width", One),
					TextEl("height", One),
				),
			),
			El("authors", One,
				El("author", Many, // ITEM ⋈ AUTHOR ⋈ AUTHOR_2
					El("name", One,
						TextEl("first_name", One),
						TextEl("middle_name", Opt),
						TextEl("last_name", One),
					),
					TextEl("date_of_birth", Opt),
					TextEl("biography", Opt),
					El("contact_information", One, // from AUTHOR_2
						El("mailing_address", One, // AUTHOR_2 ⋈ ADDRESS ⋈ COUNTRY
							TextEl("street_address1", One),
							TextEl("street_address2", Opt),
							TextEl("city", One),
							TextEl("state", Opt),
							TextEl("zip_code", One),
							El("name_of_country", One), // from COUNTRY
						),
						TextEl("phone_number", Opt),
						TextEl("email_address", Opt),
					),
				),
			),
			El("publisher", One, // from PUBLISHER
				TextEl("name", One),
				TextEl("FAX_number", Opt), // missing-element target of Q14
				TextEl("phone_number", One),
				TextEl("email_address", One),
			),
		).WithAttrs("id"), // item/@id — indexed per Table 3
	),
}

// orderSchema is the DC/MD class (paper Figure 4): one orderXXX.xml per
// order, joining ORDERS ⋈ ORDER_LINE (1:n) ⋈ CC_XACTS (1:1); plus the five
// flat-translation (FT) documents Customer, Item, Author, Address, Country
// where each tuple becomes an element instance and every column a
// sub-element.
var orderSchema = &Schema{
	Class:   core.DCMD,
	DocName: "orderXXX.xml",
	Root: El("order", One,
		TextEl("customer_id", One),
		TextEl("order_date", One),
		TextEl("sub_total", One),
		TextEl("tax", One),
		TextEl("total", One),
		TextEl("ship_type", One),
		TextEl("ship_date", One),
		TextEl("ship_addr_id", One),
		El("order_status", One), // empty-able status element; Q9 target
		El("cc_xacts", One, // ORDERS 1:1 CC_XACTS
			TextEl("cc_type", One),
			TextEl("cc_number", One),
			TextEl("cc_name", One),
			TextEl("cc_expiry", One),
			TextEl("cc_auth_id", One),
			TextEl("total_amount", One),
			TextEl("ship_country", Opt),
		),
		El("order_lines", One, // ORDERS 1:n ORDER_LINE
			El("order_line", Many,
				TextEl("item_id", One),
				TextEl("qty", One),
				TextEl("discount", One),
				TextEl("comment", Opt),
			),
		),
	).WithAttrs("id"), // order/@id — indexed per Table 3
	ExtraRoots: []*Elem{
		El("customers", One,
			El("customer", Many,
				TextEl("c_uname", One),
				TextEl("c_fname", One),
				TextEl("c_lname", One),
				TextEl("c_phone", One),
				TextEl("c_email", One),
				TextEl("c_since", One),
				TextEl("c_discount", One),
				TextEl("c_addr_id", One),
			).WithAttrs("id"),
		),
		El("items", One,
			El("flat_item", Many,
				TextEl("i_title", One),
				TextEl("i_a_id", One),
				TextEl("i_pub_date", One),
				TextEl("i_publisher", One),
				TextEl("i_subject", One),
				TextEl("i_cost", One),
				TextEl("i_isbn", One),
				TextEl("i_page", One),
			).WithAttrs("id"),
		),
		El("authors", One,
			El("flat_author", Many,
				TextEl("a_fname", One),
				TextEl("a_lname", One),
				TextEl("a_mname", Opt),
				TextEl("a_dob", One),
				TextEl("a_bio", One),
			).WithAttrs("id"),
		),
		El("addresses", One,
			El("address", Many,
				TextEl("addr_street1", One),
				TextEl("addr_street2", Opt),
				TextEl("addr_city", One),
				TextEl("addr_state", One),
				TextEl("addr_zip", One),
				TextEl("addr_co_id", One),
			).WithAttrs("id"),
		),
		El("countries", One,
			El("country", Many,
				TextEl("co_name", One),
				TextEl("co_exchange", One),
				TextEl("co_currency", One),
			).WithAttrs("id"),
		),
	},
}
