package xmlschema

import (
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/xmldom"
)

func TestForAllClasses(t *testing.T) {
	for _, c := range core.Classes {
		s := For(c)
		if s == nil || s.Class != c {
			t.Fatalf("For(%s) = %+v", c, s)
		}
		if s.Root == nil || s.DocName == "" {
			t.Fatalf("schema for %s incomplete", c)
		}
	}
}

func TestDTDMentionsKeyElements(t *testing.T) {
	cases := map[core.Class][]string{
		core.TCSD: {"dictionary", "entry", "hw", "qt", "#PCDATA |"}, // mixed qt
		core.TCMD: {"article", "sec", "contact", "sec*"},            // recursion
		core.DCSD: {"catalog", "item", "FAX_number?", "id ID #REQUIRED"},
		core.DCMD: {"order", "order_line", "cc_xacts", "customer"},
	}
	for c, wants := range cases {
		dtd := For(c).DTD()
		for _, w := range wants {
			if !strings.Contains(dtd, w) {
				t.Errorf("%s DTD missing %q:\n%s", c, w, dtd)
			}
		}
	}
}

func TestDTDDeclaresEachElementOnce(t *testing.T) {
	for _, c := range core.Classes {
		dtd := For(c).DTD()
		for _, name := range For(c).ElementNames() {
			n := strings.Count(dtd, "<!ELEMENT "+name+" ")
			if n != 1 {
				t.Errorf("%s: element %q declared %d times", c, name, n)
			}
		}
	}
}

func TestDiagramShape(t *testing.T) {
	d := For(core.TCSD).Diagram()
	for _, w := range []string{"TC/SD", "dictionary", "entry+ (@id)", "qt (mixed)", "└──"} {
		if !strings.Contains(d, w) {
			t.Errorf("TC/SD diagram missing %q:\n%s", w, d)
		}
	}
	d = For(core.TCMD).Diagram()
	if !strings.Contains(d, "recursive") {
		t.Errorf("TC/MD diagram does not mark recursion:\n%s", d)
	}
	d = For(core.DCMD).Diagram()
	// DC/MD must also show the flat-translation documents.
	for _, w := range []string{"customers", "countries", "order_line+"} {
		if !strings.Contains(d, w) {
			t.Errorf("DC/MD diagram missing %q", w)
		}
	}
}

func TestValidateAcceptsConforming(t *testing.T) {
	doc := xmldom.MustParse(`<order id="O1">
		<customer_id>C1</customer_id><order_date>2001-01-01</order_date>
		<sub_total>1</sub_total><tax>0.1</tax><total>1.1</total>
		<ship_type>AIR</ship_type><ship_date>2001-01-02</ship_date>
		<ship_addr_id>A1</ship_addr_id><order_status>SHIPPED</order_status>
		<cc_xacts><cc_type>VISA</cc_type><cc_number>4111</cc_number>
		<cc_name>X</cc_name><cc_expiry>2003-01-01</cc_expiry>
		<cc_auth_id>7</cc_auth_id><total_amount>1.1</total_amount></cc_xacts>
		<order_lines><order_line><item_id>I1</item_id><qty>2</qty>
		<discount>0</discount></order_line></order_lines></order>`)
	if err := For(core.DCMD).Validate(doc); err != nil {
		t.Fatalf("conforming order rejected: %v", err)
	}
}

func TestValidateRejectsViolations(t *testing.T) {
	s := For(core.DCMD)
	bad := []string{
		`<bogus/>`,                           // unknown root
		`<order id="1"><nope/></order>`,      // undeclared child
		`<order id="1" color="red"></order>`, // undeclared attribute
	}
	for _, src := range bad {
		if err := s.Validate(xmldom.MustParse(src)); err == nil {
			t.Errorf("Validate accepted %q", src)
		}
	}
}

func TestValidateRecursiveSections(t *testing.T) {
	doc := xmldom.MustParse(`<article id="a1"><prolog><title>T</title>
		<authors><author><name>N</name></author></authors></prolog>
		<body><sec id="s1"><heading>Introduction</heading><p>x</p>
		<sec id="s2"><p>nested</p></sec></sec></body></article>`)
	if err := For(core.TCMD).Validate(doc); err != nil {
		t.Fatalf("recursive sec rejected: %v", err)
	}
}

func TestValidateMixedContent(t *testing.T) {
	// qt carries mixed content; the dictionary schema must allow it.
	doc := xmldom.MustParse(`<dictionary><entry id="e1"><hw>w</hw><pos>n</pos>
		<sense><def>d</def><qp><q><qd>1999-01-01</qd><a>A</a><loc>L</loc>
		<qt>text <i>em</i> more</qt></q></qp></sense></entry></dictionary>`)
	if err := For(core.TCSD).Validate(doc); err != nil {
		t.Fatalf("mixed qt rejected: %v", err)
	}
}

func TestElementNamesSortedUnique(t *testing.T) {
	names := For(core.DCSD).ElementNames()
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted/unique at %d: %v", i, names)
		}
	}
	found := false
	for _, n := range names {
		if n == "number_of_pages" {
			found = true
		}
	}
	if !found {
		t.Fatal("DC/SD missing number_of_pages (Q20 cast target)")
	}
}

func TestXSDWellFormedAndComplete(t *testing.T) {
	for _, c := range core.Classes {
		xsd := For(c).XSD()
		// The XSD itself must be well-formed XML (our own parser checks it).
		if _, err := xmldom.Parse([]byte(xsd)); err != nil {
			t.Fatalf("%s XSD not well-formed: %v\n%s", c, err, xsd)
		}
		// Every element type must be declared.
		for _, name := range For(c).ElementNames() {
			if !strings.Contains(xsd, `name="`+name+`"`) {
				t.Errorf("%s XSD missing element %q", c, name)
			}
		}
	}
}

func TestXSDStructuralMarkers(t *testing.T) {
	tc := For(core.TCMD).XSD()
	// Recursive sec becomes a named complex type referencing itself.
	if !strings.Contains(tc, `complexType name="secType"`) ||
		!strings.Contains(tc, `type="secType" minOccurs="0" maxOccurs="unbounded"`) {
		t.Errorf("TC/MD XSD does not express sec recursion:\n%s", tc)
	}
	td := For(core.TCSD).XSD()
	if !strings.Contains(td, `mixed="true"`) {
		t.Error("TC/SD XSD does not mark qt as mixed")
	}
	dc := For(core.DCSD).XSD()
	if !strings.Contains(dc, `type="xs:ID" use="required"`) {
		t.Error("DC/SD XSD does not require item ids")
	}
	if !strings.Contains(dc, `minOccurs="0"`) {
		t.Error("DC/SD XSD has no optional elements")
	}
}
