// Package xmlschema describes the document structure of the four XBench
// database classes — the information conveyed by Figures 1–4 of the paper —
// and can emit it as a DTD or as an ASCII schema diagram. The generators in
// internal/gen emit documents conforming to these schemas, and a validator
// here lets tests check that claim.
package xmlschema

import (
	"fmt"
	"sort"
	"strings"

	"xbench/internal/core"
	"xbench/internal/xmldom"
)

// Occurs is an element's occurrence constraint within its parent.
type Occurs int

const (
	// One means exactly one occurrence (solid rectangle in the figures).
	One Occurs = iota
	// Opt means zero or one (dotted rectangle).
	Opt
	// Many means one or more.
	Many
	// Any means zero or more.
	Any
)

func (o Occurs) dtdSuffix() string {
	switch o {
	case Opt:
		return "?"
	case Many:
		return "+"
	case Any:
		return "*"
	}
	return ""
}

// Elem is one element type in a class schema.
type Elem struct {
	Name     string
	Occurs   Occurs   // occurrence within the parent
	Attrs    []string // attribute names; "@id"-style without the '@'
	Children []*Elem
	// Text marks elements whose content is character data (leaf #PCDATA).
	Text bool
	// Mixed marks mixed-content elements (text interleaved with children),
	// e.g. qt in dictionary.xml — the content model relational mappings
	// cannot represent (paper §3.1.3 item 3).
	Mixed bool
	// Recursive marks elements that may contain themselves (sec in
	// articles), depicted as a back edge in Figure 2.
	Recursive bool
}

// El is a builder shorthand used by the class schema literals.
func El(name string, occurs Occurs, children ...*Elem) *Elem {
	return &Elem{Name: name, Occurs: occurs, Children: children}
}

// TextEl builds a #PCDATA leaf.
func TextEl(name string, occurs Occurs) *Elem {
	return &Elem{Name: name, Occurs: occurs, Text: true}
}

// WithAttrs attaches attribute declarations and returns e.
func (e *Elem) WithAttrs(names ...string) *Elem {
	e.Attrs = append(e.Attrs, names...)
	return e
}

// WithMixed marks e as mixed content and returns e.
func (e *Elem) WithMixed() *Elem { e.Mixed = true; return e }

// WithRecursive marks e as allowing itself as a child and returns e.
func (e *Elem) WithRecursive() *Elem { e.Recursive = true; return e }

// Schema is the document structure of one class.
type Schema struct {
	Class core.Class
	// DocName is the document naming pattern, e.g. "dictionary.xml" or
	// "articleXXX.xml".
	DocName string
	Root    *Elem
	// ExtraRoots lists the additional flat-translation documents of DC/MD
	// (Customer, Item, Author, Address, Country).
	ExtraRoots []*Elem
}

// For returns the schema of a class.
func For(c core.Class) *Schema {
	switch c {
	case core.TCSD:
		return dictionarySchema
	case core.TCMD:
		return articleSchema
	case core.DCSD:
		return catalogSchema
	case core.DCMD:
		return orderSchema
	}
	panic("xmlschema: unknown class")
}

// DTD renders the schema as a Document Type Definition.
func (s *Schema) DTD() string {
	var b strings.Builder
	seen := map[string]bool{}
	var emit func(e *Elem)
	emit = func(e *Elem) {
		if seen[e.Name] {
			return
		}
		seen[e.Name] = true
		switch {
		case e.Mixed:
			names := make([]string, 0, len(e.Children))
			for _, c := range e.Children {
				names = append(names, c.Name)
			}
			fmt.Fprintf(&b, "<!ELEMENT %s (#PCDATA | %s)*>\n", e.Name, strings.Join(names, " | "))
		case e.Text || len(e.Children) == 0:
			fmt.Fprintf(&b, "<!ELEMENT %s (#PCDATA)>\n", e.Name)
		default:
			parts := make([]string, 0, len(e.Children)+1)
			for _, c := range e.Children {
				parts = append(parts, c.Name+c.Occurs.dtdSuffix())
			}
			if e.Recursive {
				parts = append(parts, e.Name+"*")
			}
			fmt.Fprintf(&b, "<!ELEMENT %s (%s)>\n", e.Name, strings.Join(parts, ", "))
		}
		if len(e.Attrs) > 0 {
			fmt.Fprintf(&b, "<!ATTLIST %s", e.Name)
			for _, a := range e.Attrs {
				kind := "CDATA #IMPLIED"
				if a == "id" {
					kind = "ID #REQUIRED"
				}
				fmt.Fprintf(&b, "\n  %s %s", a, kind)
			}
			b.WriteString(">\n")
		}
		for _, c := range e.Children {
			emit(c)
		}
	}
	emit(s.Root)
	for _, r := range s.ExtraRoots {
		emit(r)
	}
	return b.String()
}

// Diagram renders the ASCII schema tree that stands in for the paper's
// figure. Dotted boxes (optional elements) render with a '?' marker,
// repetition with '*'/'+', mixed content with '(mixed)'.
func (s *Schema) Diagram() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Schema of %s (%s)\n", s.Class, s.DocName)
	drawElem(&b, s.Root, "", true, true)
	for _, r := range s.ExtraRoots {
		b.WriteString("\n")
		drawElem(&b, r, "", true, true)
	}
	return b.String()
}

func drawElem(b *strings.Builder, e *Elem, prefix string, last, root bool) {
	connector := "├── "
	childPrefix := prefix + "│   "
	if last {
		connector = "└── "
		childPrefix = prefix + "    "
	}
	if root {
		connector = ""
		childPrefix = ""
	}
	label := e.Name
	switch e.Occurs {
	case Opt:
		label += "?"
	case Many:
		label += "+"
	case Any:
		label += "*"
	}
	var notes []string
	for _, a := range e.Attrs {
		notes = append(notes, "@"+a)
	}
	if e.Mixed {
		notes = append(notes, "mixed")
	}
	if e.Recursive {
		notes = append(notes, "recursive")
	}
	if len(notes) > 0 {
		label += " (" + strings.Join(notes, ", ") + ")"
	}
	fmt.Fprintf(b, "%s%s%s\n", prefix, connector, label)
	for i, c := range e.Children {
		drawElem(b, c, childPrefix, i == len(e.Children)-1, false)
	}
}

// ElementNames returns the sorted set of element type names in the schema.
func (s *Schema) ElementNames() []string {
	set := map[string]bool{}
	var walk func(e *Elem)
	walk = func(e *Elem) {
		set[e.Name] = true
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(s.Root)
	for _, r := range s.ExtraRoots {
		walk(r)
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks a document against the schema: every element must be a
// declared child of its parent (or the element itself when recursive), with
// declared attributes only. It returns the first violation found.
func (s *Schema) Validate(doc *xmldom.Node) error {
	root := doc.Root()
	if root == nil {
		return fmt.Errorf("xmlschema: document has no root element")
	}
	decl := s.findRoot(root.Name)
	if decl == nil {
		return fmt.Errorf("xmlschema: unknown root element <%s> for class %s", root.Name, s.Class)
	}
	return validateElem(root, decl)
}

func (s *Schema) findRoot(name string) *Elem {
	if s.Root.Name == name {
		return s.Root
	}
	for _, r := range s.ExtraRoots {
		if r.Name == name {
			return r
		}
	}
	return nil
}

func validateElem(n *xmldom.Node, decl *Elem) error {
	declared := map[string]*Elem{}
	for _, c := range decl.Children {
		declared[c.Name] = c
	}
	if decl.Recursive {
		declared[decl.Name] = decl
	}
	attrOK := map[string]bool{}
	for _, a := range decl.Attrs {
		attrOK[a] = true
	}
	for _, a := range n.Attrs {
		if !attrOK[a.Name] {
			return fmt.Errorf("xmlschema: undeclared attribute %q on <%s>", a.Name, n.Name)
		}
	}
	for _, c := range n.Children {
		switch c.Kind {
		case xmldom.ElementKind:
			child, ok := declared[c.Name]
			if !ok {
				return fmt.Errorf("xmlschema: <%s> is not a declared child of <%s>", c.Name, n.Name)
			}
			if err := validateElem(c, child); err != nil {
				return err
			}
		case xmldom.TextKind:
			if !decl.Text && !decl.Mixed && len(decl.Children) > 0 &&
				strings.TrimSpace(c.Data) != "" {
				return fmt.Errorf("xmlschema: unexpected text content in <%s>", n.Name)
			}
		}
	}
	return nil
}
