package workload

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/engines/native"
	"xbench/internal/engines/sqlserver"
	"xbench/internal/engines/xcollection"
	"xbench/internal/engines/xcolumn"
	"xbench/internal/gen"
)

// benchQueries are the five queries the paper's experiments run.
var benchQueries = []core.QueryID{core.Q5, core.Q8, core.Q12, core.Q14, core.Q17}

func tinyDB(t *testing.T, class core.Class) *core.Database {
	t.Helper()
	cfg := gen.Config{DictEntries: 50, Articles: 8, Items: 30, Orders: 50}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func allEngines() []core.Engine {
	return []core.Engine{
		native.New(0),
		xcolumn.New(0),
		xcollection.New(0, 0),
		sqlserver.New(0),
	}
}

func TestCapabilityMatrix(t *testing.T) {
	cases := []struct {
		engine  core.Engine
		class   core.Class
		size    core.Size
		wantErr bool
	}{
		{native.New(0), core.TCSD, core.Large, false},
		{xcolumn.New(0), core.TCSD, core.Small, true},  // SD unsupported
		{xcolumn.New(0), core.DCSD, core.Small, true},  // SD unsupported
		{xcolumn.New(0), core.DCMD, core.Large, false}, // MD fine
		{xcollection.New(0, 0), core.TCSD, core.Small, false},
		{xcollection.New(0, 0), core.TCSD, core.Normal, true}, // row limit
		{xcollection.New(0, 0), core.DCSD, core.Large, true},
		{xcollection.New(0, 0), core.DCMD, core.Large, false},
		{sqlserver.New(0), core.TCSD, core.Large, false},
	}
	for _, c := range cases {
		err := c.engine.Supports(c.class, c.size)
		if (err != nil) != c.wantErr {
			t.Errorf("%s Supports(%s, %s) = %v, wantErr=%v",
				c.engine.Name(), c.class, c.size, err, c.wantErr)
		}
		if err != nil && !errors.Is(err, core.ErrUnsupported) {
			t.Errorf("%s: unsupported error not wrapping ErrUnsupported: %v", c.engine.Name(), err)
		}
	}
}

// TestCrossEngineEquivalence is the central correctness check of the
// reproduction: every engine that supports a class must produce the same
// answers as the native engine for the benchmarked queries, up to the
// documented lossiness of its mapping.
func TestCrossEngineEquivalence(t *testing.T) {
	for _, class := range core.Classes {
		class := class
		t.Run(class.Code(), func(t *testing.T) {
			db := tinyDB(t, class)
			nat := native.New(0)
			if _, _, err := LoadAndIndex(context.Background(), nat, db); err != nil {
				t.Fatalf("native load: %v", err)
			}
			// Native answers for every defined query act as the oracle.
			oracle := map[core.QueryID]core.Result{}
			for _, q := range QueryIDs(class) {
				m := RunCold(context.Background(), nat, class, q)
				if m.Err != nil {
					t.Fatalf("native %s: %v", q, m.Err)
				}
				oracle[q] = m.Result
			}
			// The five benchmarked queries must return something for at
			// least Q5/Q8/Q12 (parameterized on guaranteed ids).
			for _, q := range []core.QueryID{core.Q5, core.Q8, core.Q12} {
				if len(oracle[q].Items) == 0 {
					t.Errorf("native %s returned no items", q)
				}
			}

			for _, e := range allEngines()[1:] {
				if e.Supports(class, core.Small) != nil {
					continue
				}
				if _, _, err := LoadAndIndex(context.Background(), e, db); err != nil {
					t.Fatalf("%s load: %v", e.Name(), err)
				}
				for _, q := range benchQueries {
					m := RunCold(context.Background(), e, class, q)
					if errors.Is(m.Err, core.ErrNoQuery) {
						t.Errorf("%s does not implement %s/%s", e.Name(), class, q)
						continue
					}
					if m.Err != nil {
						t.Errorf("%s %s/%s: %v", e.Name(), class, q, m.Err)
						continue
					}
					mode := ModeFor(class, q, e.Name())
					if err := Check(mode, oracle[q], m.Result); err != nil {
						t.Errorf("%s %s/%s mismatch (%v): %v", e.Name(), class, q, mode, err)
					}
				}
			}
		})
	}
}

func TestNativeRunsFullWorkload(t *testing.T) {
	for _, class := range core.Classes {
		db := tinyDB(t, class)
		nat := native.New(0)
		if _, _, err := LoadAndIndex(context.Background(), nat, db); err != nil {
			t.Fatal(err)
		}
		ids := QueryIDs(class)
		if len(ids) < 12 {
			t.Errorf("%s instantiates only %d query types", class, len(ids))
		}
		for _, q := range ids {
			m := RunCold(context.Background(), nat, class, q)
			if m.Err != nil {
				t.Errorf("native %s/%s failed: %v", class, q, m.Err)
			}
		}
	}
}

func TestUndefinedQueryReturnsErrNoQuery(t *testing.T) {
	db := tinyDB(t, core.DCSD)
	nat := native.New(0)
	if _, _, err := LoadAndIndex(context.Background(), nat, db); err != nil {
		t.Fatal(err)
	}
	// Q19 (references and joins) is a DC/MD query, not defined for DC/SD.
	if _, err := nat.Execute(context.Background(), core.Q19, Params(core.DCSD)); !errors.Is(err, core.ErrNoQuery) {
		t.Fatalf("expected ErrNoQuery, got %v", err)
	}
}

func TestIndexSpeedsUpNative(t *testing.T) {
	db := tinyDB(t, core.DCMD)
	withIdx := native.New(0)
	if _, _, err := LoadAndIndex(context.Background(), withIdx, db); err != nil {
		t.Fatal(err)
	}
	noIdx := native.New(0)
	if _, err := noIdx.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	a := RunCold(context.Background(), withIdx, core.DCMD, core.Q5)
	b := RunCold(context.Background(), noIdx, core.DCMD, core.Q5)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if err := Check(Exact, a.Result, b.Result); err != nil {
		t.Fatalf("indexed and scan answers differ: %v", err)
	}
	if a.Result.PageIO >= b.Result.PageIO {
		t.Errorf("index did not reduce page I/O: indexed=%d scan=%d",
			a.Result.PageIO, b.Result.PageIO)
	}
}

func TestColdRunCostsIO(t *testing.T) {
	db := tinyDB(t, core.TCMD)
	e := native.New(0)
	if _, _, err := LoadAndIndex(context.Background(), e, db); err != nil {
		t.Fatal(err)
	}
	m := RunCold(context.Background(), e, core.TCMD, core.Q1)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Result.PageIO == 0 {
		t.Fatal("cold run performed no page I/O")
	}
}

func TestParamsCoverQueryNeeds(t *testing.T) {
	for _, class := range core.Classes {
		p := Params(class)
		for _, q := range QueryIDs(class) {
			_ = q
		}
		// Spot-check the critical bindings.
		switch class {
		case core.TCSD:
			if p.Get("W") == "" {
				t.Error("TCSD missing W")
			}
		case core.DCMD:
			if p.Get("X") != "O1" || p.Get("DOC") != "order1.xml" {
				t.Error("DCMD ids wrong")
			}
		}
		if p.Get("LO") >= p.Get("HI") {
			t.Errorf("%s: empty date window", class)
		}
	}
}

func TestShreddedFlagsOrderSensitivity(t *testing.T) {
	db := tinyDB(t, core.DCMD)
	e := xcollection.New(0, 0)
	if _, _, err := LoadAndIndex(context.Background(), e, db); err != nil {
		t.Fatal(err)
	}
	m := RunCold(context.Background(), e, core.DCMD, core.Q5)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Result.OrderGuaranteed {
		t.Fatal("shredded engine claims guaranteed order for Q5")
	}
	// Xcolumn guarantees order via dxx_seqno.
	xc := xcolumn.New(0)
	if _, _, err := LoadAndIndex(context.Background(), xc, db); err != nil {
		t.Fatal(err)
	}
	m = RunCold(context.Background(), xc, core.DCMD, core.Q5)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if !m.Result.OrderGuaranteed {
		t.Fatal("Xcolumn should guarantee order")
	}
}

func TestSQLServerDropsMixedContent(t *testing.T) {
	db := tinyDB(t, core.TCSD)
	ss := sqlserver.New(0)
	st, _, err := LoadAndIndex(context.Background(), ss, db)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedMixed == 0 {
		t.Fatal("SQL Server load dropped no mixed content (qt elements should be unmappable)")
	}
	m := RunCold(context.Background(), ss, core.TCSD, core.Q8)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if !m.Result.MixedContentLost {
		t.Fatal("Q8 over qt should flag MixedContentLost")
	}
	for _, item := range m.Result.Items {
		if strings.Contains(item, "<qt>") && item != "<qt/>" {
			t.Fatalf("SQL Server returned mixed content it cannot store: %s", item)
		}
	}
	// Xcollection keeps the flattened text.
	xc := xcollection.New(0, 0)
	if _, _, err := LoadAndIndex(context.Background(), xc, db); err != nil {
		t.Fatal(err)
	}
	m2 := RunCold(context.Background(), xc, core.TCSD, core.Q8)
	if m2.Err != nil {
		t.Fatal(m2.Err)
	}
	flattened := false
	for _, item := range m2.Result.Items {
		if strings.Contains(item, "<qt>") && len(item) > len("<qt></qt>") {
			flattened = true
		}
	}
	if len(m2.Result.Items) > 0 && !flattened {
		t.Fatal("Xcollection lost all qt text; expected flattened text")
	}
}

func TestXcollectionRowLimitTrips(t *testing.T) {
	// A tiny row limit must reject even a Small single-document database
	// during load, mirroring DB2's 1024-row decomposition limit.
	db := tinyDB(t, core.TCSD)
	e := xcollection.New(0, 10)
	_, err := e.Load(context.Background(), db)
	if !errors.Is(err, core.ErrUnsupported) {
		t.Fatalf("row limit did not trip: %v", err)
	}
}

func TestLoadStatsShape(t *testing.T) {
	db := tinyDB(t, core.DCMD)
	for _, e := range allEngines() {
		if e.Supports(core.DCMD, core.Small) != nil {
			continue
		}
		st, dur, err := LoadAndIndex(context.Background(), e, db)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if st.Documents != len(db.Docs) {
			t.Errorf("%s: loaded %d documents, want %d", e.Name(), st.Documents, len(db.Docs))
		}
		if st.Bytes != db.Bytes() {
			t.Errorf("%s: consumed %d bytes, want %d", e.Name(), st.Bytes, db.Bytes())
		}
		if st.PageIO == 0 {
			t.Errorf("%s: load performed no page I/O", e.Name())
		}
		if dur <= 0 {
			t.Errorf("%s: non-positive load duration", e.Name())
		}
		if e.Name() == "X-Hive" && st.Nodes == 0 {
			t.Error("native load counted no nodes")
		}
		if e.Name() != "X-Hive" && e.Name() != "Xcolumn" && st.Rows == 0 {
			t.Errorf("%s: shredding produced no rows", e.Name())
		}
	}
}

// TestExtendedEngineQueries checks the queries individual engines implement
// beyond the benchmarked five, against the native oracle.
func TestExtendedEngineQueries(t *testing.T) {
	extras := map[string]map[core.Class][]core.QueryID{
		"Xcollection": {
			core.TCSD: {core.Q1, core.Q2, core.Q11, core.Q18},
			core.DCSD: {core.Q1, core.Q2, core.Q3, core.Q6, core.Q7, core.Q10, core.Q20},
			core.DCMD: {core.Q1, core.Q2, core.Q3, core.Q6, core.Q9, core.Q10, core.Q15, core.Q16, core.Q19},
			core.TCMD: {core.Q1, core.Q2, core.Q3, core.Q13, core.Q15},
		},
		"SQL Server": {
			core.TCSD: {core.Q1, core.Q2, core.Q11, core.Q18},
			core.DCSD: {core.Q1, core.Q2, core.Q3, core.Q6, core.Q7, core.Q10, core.Q20},
			core.DCMD: {core.Q1, core.Q2, core.Q3, core.Q6, core.Q9, core.Q10, core.Q15, core.Q16, core.Q19},
			core.TCMD: {core.Q1, core.Q2, core.Q3, core.Q13, core.Q15},
		},
		"Xcolumn": {
			core.DCMD: {core.Q1, core.Q9, core.Q10, core.Q16, core.Q19},
			core.TCMD: {core.Q1},
		},
	}
	for _, class := range core.Classes {
		db := tinyDB(t, class)
		nat := native.New(0)
		if _, _, err := LoadAndIndex(context.Background(), nat, db); err != nil {
			t.Fatal(err)
		}
		for _, e := range allEngines()[1:] {
			qs := extras[e.Name()][class]
			if len(qs) == 0 || e.Supports(class, core.Small) != nil {
				continue
			}
			if _, _, err := LoadAndIndex(context.Background(), e, db); err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			for _, q := range qs {
				want := RunCold(context.Background(), nat, class, q)
				if want.Err != nil {
					t.Fatalf("native %s/%s: %v", class, q, want.Err)
				}
				got := RunCold(context.Background(), e, class, q)
				if got.Err != nil {
					t.Errorf("%s %s/%s: %v", e.Name(), class, q, got.Err)
					continue
				}
				mode := ModeFor(class, q, e.Name())
				if err := Check(mode, want.Result, got.Result); err != nil {
					t.Errorf("%s %s/%s (%v): %v", e.Name(), class, q, mode, err)
				}
			}
		}
	}
}

// TestQ16RoundTripsOriginalDocument pins that Q16 (retrieval of individual
// documents) returns the loaded document content for every engine that
// implements it — content preservation is the point of the query.
func TestQ16RoundTripsOriginalDocument(t *testing.T) {
	db := tinyDB(t, core.DCMD)
	var original string
	for _, d := range db.Docs {
		if d.Name == "order1.xml" {
			// Strip the XML declaration line; engines return the element.
			s := string(d.Data)
			if i := strings.Index(s, "?>"); i >= 0 {
				s = strings.TrimSpace(s[i+2:])
			}
			original = s
		}
	}
	for _, e := range allEngines() {
		if e.Supports(core.DCMD, core.Small) != nil {
			continue
		}
		if _, _, err := LoadAndIndex(context.Background(), e, db); err != nil {
			t.Fatal(err)
		}
		m := RunCold(context.Background(), e, core.DCMD, core.Q16)
		if errors.Is(m.Err, core.ErrNoQuery) {
			continue
		}
		if m.Err != nil {
			t.Fatalf("%s Q16: %v", e.Name(), m.Err)
		}
		if len(m.Result.Items) != 1 || m.Result.Items[0] != original {
			t.Errorf("%s Q16 did not preserve the document:\n got: %.120s\nwant: %.120s",
				e.Name(), m.Result.Items[0], original)
		}
	}
}

func TestUpdateWorkload(t *testing.T) {
	for _, class := range []core.Class{core.DCMD, core.TCMD} {
		db := tinyDB(t, class)
		e := native.New(0)
		if _, _, err := LoadAndIndex(context.Background(), e, db); err != nil {
			t.Fatal(err)
		}
		before := e.DocumentCount()
		for seq, op := range []UpdateOp{U1, U2, U3} {
			m := RunUpdate(e, class, op, seq)
			if m.Err != nil {
				t.Fatalf("%s %s: %v", class, op, m.Err)
			}
			if m.Elapsed <= 0 {
				t.Fatalf("%s %s: no time measured", class, op)
			}
		}
		// U1(seq=0) inserted, U2(seq=1) upserted, U3(seq=2) insert+delete:
		// net +2 documents.
		if got := e.DocumentCount(); got != before+2 {
			t.Fatalf("%s: document count %d, want %d", class, got, before+2)
		}
	}
}

func TestUpdateWorkloadRejectsSingleDocumentClasses(t *testing.T) {
	db := tinyDB(t, core.TCSD)
	e := native.New(0)
	if _, _, err := LoadAndIndex(context.Background(), e, db); err != nil {
		t.Fatal(err)
	}
	if m := RunUpdate(e, core.TCSD, U1, 0); m.Err == nil {
		t.Fatal("update workload accepted a single-document class")
	}
}
