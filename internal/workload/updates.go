package workload

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"xbench/internal/core"
	"xbench/internal/engines/native"
	"xbench/internal/metrics"
	"xbench/internal/xmldom"
)

// The paper lists update workloads as planned future work for XBench
// ("(2) update workloads"). This file defines a small document-granularity
// update workload — the unit a native XML store actually manages — for the
// multi-document classes, runnable against any core.Engine:
//
//	U1: insert a new document
//	U2: replace an existing document
//	U3: delete a document
//
// Each operation is followed by a verification query (reported
// separately, see UpdateMeasurement) so the measurement covers a durable,
// observable update.

// UpdateOp identifies one update workload operation.
type UpdateOp int

const (
	// U1 inserts a fresh document.
	U1 UpdateOp = iota + 1
	// U2 replaces an existing document with new content.
	U2
	// U3 deletes a document.
	U3
)

func (u UpdateOp) String() string { return fmt.Sprintf("U%d", int(u)) }

// UpdateOps lists the update operations in workload order.
var UpdateOps = []UpdateOp{U1, U2, U3}

// UpdateMeasurement reports one update execution.
type UpdateMeasurement struct {
	Op UpdateOp
	// Elapsed covers only the update operation itself (setup, such as
	// pre-creating the document U2 replaces or U3 deletes, is untimed).
	Elapsed time.Duration
	// VerifyElapsed covers the follow-up verification query, reported
	// separately so update latency is not inflated by a read.
	VerifyElapsed time.Duration
	// Breakdown attributes the update's metrics activity (pager I/O, WAL
	// appends, phases) when the engine exposes a registry; zero otherwise.
	// It covers the timed update only, not setup or verification.
	Breakdown metrics.Breakdown
	Err       error
}

// RunUpdateOp executes one update operation against an engine loaded with
// a multi-document class database, using deterministic synthetic content,
// and verifies the effect with a follow-up Q1. seq distinguishes repeated
// runs (documents are named after it); use a fresh seq per op — U1
// inserts strictly and fails on an existing name.
//
// U2 and U3 first ensure their target document exists (an untimed upsert
// of revision 0); the timed operation then replaces it with revision 1
// content or deletes it, so Elapsed measures a true replace/delete.
func RunUpdateOp(ctx context.Context, e core.Engine, class core.Class, op UpdateOp, seq int) UpdateMeasurement {
	m := UpdateMeasurement{Op: op}
	if class.SingleDocument() {
		m.Err = fmt.Errorf("workload: update workload is defined for multi-document classes, not %s", class)
		return m
	}
	name, doc := UpdateDoc(class, seq, 0)
	if op == U2 || op == U3 {
		if err := e.ReplaceDocument(ctx, name, doc); err != nil { // untimed setup
			m.Err = err
			return m
		}
	}

	var before metrics.Snapshot
	var reg *metrics.Registry
	if mp, ok := e.(MetricsProvider); ok {
		reg = mp.Metrics()
		before = reg.Snapshot()
	}
	start := time.Now()
	switch op {
	case U1:
		m.Err = e.InsertDocument(ctx, name, doc)
	case U2:
		_, doc1 := UpdateDoc(class, seq, 1)
		m.Err = e.ReplaceDocument(ctx, name, doc1)
	case U3:
		m.Err = e.DeleteDocument(ctx, name)
	default:
		m.Err = fmt.Errorf("workload: unknown update op %d", int(op))
	}
	m.Elapsed = time.Since(start)
	if reg != nil {
		m.Breakdown = reg.Snapshot().Delta(before)
	}
	if m.Err != nil {
		return m
	}

	// Verify observability.
	id := UpdateTargetID(class, seq)
	vStart := time.Now()
	res, err := e.Execute(ctx, core.Q1, core.Params{"X": id})
	m.VerifyElapsed = time.Since(vStart)
	if err != nil {
		m.Err = err
		return m
	}
	switch op {
	case U1, U2:
		if len(res.Items) == 0 {
			m.Err = fmt.Errorf("workload: %s not visible after %s", id, op)
		}
	case U3:
		if len(res.Items) != 0 {
			m.Err = fmt.Errorf("workload: %s still visible after delete", id)
		}
	}
	return m
}

// RunUpdate executes one update operation against a native engine.
//
// Deprecated: use RunUpdateOp, which targets any core.Engine, honors
// context cancellation and splits update from verification time. Kept
// for one release, like core.AdaptV1.
func RunUpdate(e *native.Engine, class core.Class, op UpdateOp, seq int) UpdateMeasurement {
	return RunUpdateOp(context.Background(), e, class, op, seq)
}

// UpdateTargetID returns the root id of the update workload's target
// document for seq — the X parameter of the verification query.
func UpdateTargetID(class core.Class, seq int) string {
	if class == core.DCMD {
		return "OU" + strconv.Itoa(seq)
	}
	return "aU" + strconv.Itoa(seq)
}

// UpdateDoc builds the deterministic, schema-conforming document the
// update workload uses for (class, seq). rev varies the content the
// verification query observes — the order total for DC/MD, the article
// title for TC/MD — so U2's replacement is distinguishable from the
// document it replaced (rev 0 is the original, rev 1 the replacement).
func UpdateDoc(class core.Class, seq, rev int) (string, []byte) {
	id := UpdateTargetID(class, seq)
	e := xmldom.NewEncoder()
	if class == core.DCMD {
		total := strconv.Itoa(10+rev) + ".80"
		e.Begin("order", "id", id)
		e.Leaf("customer_id", "C1")
		e.Leaf("order_date", "2002-06-15")
		e.Leaf("sub_total", strconv.Itoa(10+rev)+".00")
		e.Leaf("tax", "0.80")
		e.Leaf("total", total)
		e.Leaf("ship_type", "AIR")
		e.Leaf("ship_date", "2002-06-17")
		e.Leaf("ship_addr_id", "ADDR1")
		e.Leaf("order_status", "PENDING")
		e.Begin("cc_xacts")
		e.Leaf("cc_type", "VISA")
		e.Leaf("cc_number", "4000000000000000")
		e.Leaf("cc_name", "Update Workload")
		e.Leaf("cc_expiry", "2003-06-15")
		e.Leaf("cc_auth_id", "AUTH000001")
		e.Leaf("total_amount", total)
		e.End()
		e.Begin("order_lines")
		e.Begin("order_line")
		e.Leaf("item_id", "I1")
		e.Leaf("qty", strconv.Itoa(1+seq%5))
		e.Leaf("discount", "0")
		e.End()
		e.End()
		e.End()
		b, _ := e.Bytes()
		return "order-update-" + strconv.Itoa(seq) + ".xml", b
	}
	title := "Update Workload Article " + strconv.Itoa(seq)
	if rev > 0 {
		title += " (rev " + strconv.Itoa(rev) + ")"
	}
	e.Begin("article", "id", id)
	e.Begin("prolog")
	e.Leaf("title", title)
	e.Begin("authors")
	e.Begin("author")
	e.Leaf("name", "Update Author")
	e.End()
	e.End()
	e.End()
	e.Begin("body")
	e.Begin("sec", "id", id+"-s1")
	e.Leaf("heading", "Introduction")
	e.Leaf("p", "Inserted by the update workload.")
	e.End()
	e.End()
	e.End()
	b, _ := e.Bytes()
	return "article-update-" + strconv.Itoa(seq) + ".xml", b
}
