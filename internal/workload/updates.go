package workload

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"xbench/internal/core"
	"xbench/internal/engines/native"
	"xbench/internal/xmldom"
)

// The paper lists update workloads as planned future work for XBench
// ("(2) update workloads"). This file defines a small document-granularity
// update workload — the unit a native XML store actually manages — for the
// multi-document classes, runnable against the native engine:
//
//	U1: insert a new document
//	U2: replace an existing document
//	U3: delete a document
//
// Each operation is followed by a verification query so the measurement
// covers a durable, observable update.

// UpdateOp identifies one update workload operation.
type UpdateOp int

const (
	// U1 inserts a fresh document.
	U1 UpdateOp = iota + 1
	// U2 replaces an existing document with new content.
	U2
	// U3 deletes a document.
	U3
)

func (u UpdateOp) String() string { return fmt.Sprintf("U%d", int(u)) }

// UpdateMeasurement reports one update execution.
type UpdateMeasurement struct {
	Op      UpdateOp
	Elapsed time.Duration
	Err     error
}

// RunUpdate executes one update operation against a native engine loaded
// with a class database, using deterministic synthetic content, and
// verifies the effect with a follow-up query. seq distinguishes repeated
// runs (documents are named after it).
func RunUpdate(e *native.Engine, class core.Class, op UpdateOp, seq int) UpdateMeasurement {
	m := UpdateMeasurement{Op: op}
	if class.SingleDocument() {
		m.Err = fmt.Errorf("workload: update workload is defined for multi-document classes, not %s", class)
		return m
	}
	name, doc := updateDocument(class, seq)
	start := time.Now()
	switch op {
	case U1, U2:
		// U2 on a fresh name behaves as an upsert; callers measuring pure
		// replacement should run U1 first with the same seq.
		m.Err = e.ReplaceDocument(name, doc)
	case U3:
		if err := e.ReplaceDocument(name, doc); err != nil { // ensure it exists
			m.Err = err
			break
		}
		m.Err = e.DeleteDocument(name)
	default:
		m.Err = fmt.Errorf("workload: unknown update op %d", int(op))
	}
	m.Elapsed = time.Since(start)
	if m.Err != nil {
		return m
	}
	// Verify observability.
	id := updateID(class, seq)
	res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": id})
	if err != nil {
		m.Err = err
		return m
	}
	switch op {
	case U1, U2:
		if len(res.Items) == 0 {
			m.Err = fmt.Errorf("workload: %s not visible after %s", id, op)
		}
	case U3:
		if len(res.Items) != 0 {
			m.Err = fmt.Errorf("workload: %s still visible after delete", id)
		}
	}
	return m
}

func updateID(class core.Class, seq int) string {
	if class == core.DCMD {
		return "OU" + strconv.Itoa(seq)
	}
	return "aU" + strconv.Itoa(seq)
}

// updateDocument builds a deterministic, schema-conforming document for
// the update workload.
func updateDocument(class core.Class, seq int) (string, []byte) {
	id := updateID(class, seq)
	e := xmldom.NewEncoder()
	if class == core.DCMD {
		e.Begin("order", "id", id)
		e.Leaf("customer_id", "C1")
		e.Leaf("order_date", "2002-06-15")
		e.Leaf("sub_total", "10.00")
		e.Leaf("tax", "0.80")
		e.Leaf("total", "10.80")
		e.Leaf("ship_type", "AIR")
		e.Leaf("ship_date", "2002-06-17")
		e.Leaf("ship_addr_id", "ADDR1")
		e.Leaf("order_status", "PENDING")
		e.Begin("cc_xacts")
		e.Leaf("cc_type", "VISA")
		e.Leaf("cc_number", "4000000000000000")
		e.Leaf("cc_name", "Update Workload")
		e.Leaf("cc_expiry", "2003-06-15")
		e.Leaf("cc_auth_id", "AUTH000001")
		e.Leaf("total_amount", "10.80")
		e.End()
		e.Begin("order_lines")
		e.Begin("order_line")
		e.Leaf("item_id", "I1")
		e.Leaf("qty", strconv.Itoa(1+seq%5))
		e.Leaf("discount", "0")
		e.End()
		e.End()
		e.End()
		b, _ := e.Bytes()
		return "order-update-" + strconv.Itoa(seq) + ".xml", b
	}
	e.Begin("article", "id", id)
	e.Begin("prolog")
	e.Leaf("title", "Update Workload Article "+strconv.Itoa(seq))
	e.Begin("authors")
	e.Begin("author")
	e.Leaf("name", "Update Author")
	e.End()
	e.End()
	e.End()
	e.Begin("body")
	e.Begin("sec", "id", id+"-s1")
	e.Leaf("heading", "Introduction")
	e.Leaf("p", "Inserted by the update workload.")
	e.End()
	e.End()
	e.End()
	b, _ := e.Bytes()
	return "article-update-" + strconv.Itoa(seq) + ".xml", b
}
