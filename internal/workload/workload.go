// Package workload binds the XBench query parameters and drives query
// execution against the engines: cold run per query (buffer pools flushed
// first), wall-clock and page-I/O measurement, and a result checker that
// compares engine answers against the native engine's, honoring the
// paper's caveats about shredded mappings.
package workload

import (
	"context"
	"fmt"
	"time"

	"xbench/internal/core"
	"xbench/internal/metrics"
	"xbench/internal/queries"
	"xbench/internal/textgen"
)

// Params binds the external variables of every query of a class. The
// generators guarantee these values exist in any database of the class
// (first-entry headwords, first ids, pool author names, date windows that
// span the middle of the generation window).
func Params(class core.Class) core.Params {
	p := core.Params{
		"W2":     "system",         // uni-gram search word (vocabulary head region)
		"PHRASE": textgen.Phrase(), // n-gram search phrase
		"LO":     "1997-01-01",     // date window start
		"HI":     "2001-12-30",     // date window end
		"Z":      textgen.Country(0),
		"N":      "900",
		"K1":     "data",
		"K2":     "system",
	}
	switch class {
	case core.TCSD:
		p["W"] = textgen.Headword(1) // hw of entry 2
		p["Y"] = textgen.FullName(1)
		p["L"] = "London"
	case core.TCMD:
		p["X"] = "a1"
		p["Y"] = textgen.FullName(1)
		p["DOC"] = "article1.xml"
	case core.DCSD:
		p["X"] = "I1"
		p["Y"] = textgen.LastName(0)
	case core.DCMD:
		p["X"] = "O1"
		p["I"] = "I1"
		p["DOC"] = "order1.xml"
	}
	return p
}

// Indexes returns the Table 3 index specs for a class.
func Indexes(class core.Class) []core.IndexSpec { return queries.Indexes(class) }

// Defined reports whether a query type is instantiated for a class.
func Defined(class core.Class, q core.QueryID) bool {
	return queries.Lookup(class, q) != nil
}

// QueryIDs returns the query types instantiated for a class.
func QueryIDs(class core.Class) []core.QueryID {
	var out []core.QueryID
	for _, d := range queries.ForClass(class) {
		out = append(out, d.ID)
	}
	return out
}

// Measurement is the outcome of one query execution.
type Measurement struct {
	Engine  string
	Class   core.Class
	Query   core.QueryID
	Elapsed time.Duration
	Result  core.Result
	Err     error
	// Cold reports whether the engine's caches were dropped before the run.
	Cold bool
	// Breakdown attributes the run: pager I/O, cache hits, btree visits,
	// relational probes/scans and per-phase times, taken as the delta of
	// the engine's metrics registry across the Execute call. Zero-valued
	// (and safe to read) when the engine exposes no registry.
	Breakdown metrics.Breakdown
}

// MetricsProvider is the optional interface through which an engine
// exposes its metrics registry. All four real engines implement it; the
// core.Engine interface deliberately does not require it, so stub engines
// in tests stay minimal.
type MetricsProvider interface {
	Metrics() *metrics.Registry
}

// run executes one query, snapshotting the engine's metrics registry (if
// any) around the Execute call so the Measurement carries a per-run
// counter and phase breakdown.
func run(ctx context.Context, e core.Engine, class core.Class, q core.QueryID, cold bool) Measurement {
	m := Measurement{Engine: e.Name(), Class: class, Query: q, Cold: cold}
	if cold {
		e.ColdReset()
	}
	var reg *metrics.Registry
	var before metrics.Snapshot
	if mp, ok := e.(MetricsProvider); ok {
		reg = mp.Metrics()
		before = reg.Snapshot()
	}
	start := time.Now()
	res, err := e.Execute(ctx, q, Params(class))
	m.Elapsed = time.Since(start)
	if reg != nil {
		m.Breakdown = reg.Snapshot().Delta(before)
	}
	m.Result = res
	m.Err = err
	return m
}

// RunCold executes one query cold: the engine's caches are dropped first,
// reproducing the paper's "cold run time ... to prevent caching effects".
func RunCold(ctx context.Context, e core.Engine, class core.Class, q core.QueryID) Measurement {
	return run(ctx, e, class, q, true)
}

// RunWarm executes one query without dropping caches: the buffer pool
// keeps whatever earlier runs left in it, so warm-vs-cold deltas isolate
// the simulated disk component of a cell.
func RunWarm(ctx context.Context, e core.Engine, class core.Class, q core.QueryID) Measurement {
	return run(ctx, e, class, q, false)
}

// RunAll executes every query defined for the class cold, in query order.
func RunAll(ctx context.Context, e core.Engine, class core.Class) []Measurement {
	var out []Measurement
	for _, q := range QueryIDs(class) {
		out = append(out, RunCold(ctx, e, class, q))
	}
	return out
}

// LoadAndIndex bulk-loads a database into an engine and builds the Table 3
// indexes, returning the load statistics and the load duration (index
// creation excluded from the load time, matching the paper's setup where
// arbitrary indexes are created separately after bulk loading).
func LoadAndIndex(ctx context.Context, e core.Engine, db *core.Database) (core.LoadStats, time.Duration, error) {
	if err := e.Supports(db.Class, db.Size); err != nil {
		return core.LoadStats{}, 0, err
	}
	start := time.Now()
	st, err := e.Load(ctx, db)
	elapsed := time.Since(start)
	if err != nil {
		return st, elapsed, err
	}
	if err := e.BuildIndexes(Indexes(db.Class)); err != nil {
		return st, elapsed, fmt.Errorf("workload: index build: %w", err)
	}
	return st, elapsed, nil
}

// CheckMode says how strictly an engine's result can be compared with the
// native engine's for a given query.
type CheckMode int

const (
	// Exact requires identical serialized items in identical order.
	Exact CheckMode = iota
	// CountOnly requires only the same number of items: the shredded
	// mapping lost structure (mixed content, qp grouping, <p> boundaries)
	// or order, so content comparison is meaningless — the paper reports
	// those engines' results "are not necessarily accurate" but measures
	// them anyway (§3.2.2).
	CountOnly
	// Lossy accepts any answer: the mapping lost the very data the query
	// reads (SQL Server searching text it discarded as unmappable mixed
	// content), so even the result count is wrong by construction. The
	// paper reports the performance of such queries while noting they
	// "may not generate correct results" (§3.1.3).
	Lossy
)

func (m CheckMode) String() string {
	switch m {
	case Exact:
		return "exact"
	case CountOnly:
		return "count-only"
	case Lossy:
		return "lossy"
	}
	return "unknown"
}

// ModeFor returns how a non-native engine's result for (class, q) can be
// checked against the native answer.
func ModeFor(class core.Class, q core.QueryID, engineName string) CheckMode {
	def := queries.Lookup(class, q)
	if def == nil {
		return CountOnly
	}
	// Xcolumn stores documents intact: everything it answers is exact.
	if engineName == "Xcolumn" {
		return Exact
	}
	// SQL Server discarded mixed-content text entirely; queries that read
	// it cannot even match the right rows.
	if def.TouchesMixed && engineName == "SQL Server" {
		return Lossy
	}
	// Text search over a shredded dictionary diverges from the XQuery
	// string-value semantics: string(.) concatenates adjacent text nodes
	// (erasing word boundaries at element joins) while a column-wise scan
	// searches each shredded value separately. Either may match entries
	// the other misses. The phrase search Q18 shares the problem.
	if class == core.TCSD && (q == core.Q17 || q == core.Q18) {
		return Lossy
	}
	// Whole-entry reconstruction (TC/SD Q1) rebuilds a fragment whose qp
	// grouping did not survive shredding: right cardinality, wrong shape.
	if class == core.TCSD && q == core.Q1 {
		return CountOnly
	}
	// TC/MD Q12/Q13 rebuild the abstract exactly from its shredded
	// paragraph rows, so despite being order-sensitive the reconstruction
	// join is checked strictly.
	if class == core.TCMD && (q == core.Q12 || q == core.Q13) {
		return Exact
	}
	if def.OrderSensitive || def.TouchesMixed {
		return CountOnly
	}
	return Exact
}

// Check compares an engine result against the native result under a mode.
// It returns a descriptive error on mismatch.
func Check(mode CheckMode, native, got core.Result) error {
	if mode == Lossy {
		return nil
	}
	if len(native.Items) != len(got.Items) {
		return fmt.Errorf("result count %d, native %d", len(got.Items), len(native.Items))
	}
	if mode == CountOnly {
		return nil
	}
	for i := range native.Items {
		if native.Items[i] != got.Items[i] {
			return fmt.Errorf("item %d differs:\n  native: %s\n  engine: %s",
				i, truncate(native.Items[i]), truncate(got.Items[i]))
		}
	}
	return nil
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}
