package analyze

import (
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/xmldom"
)

func analyzeClass(t *testing.T, class core.Class) *Report {
	t.Helper()
	cfg := gen.Config{DictEntries: 40, Articles: 8, Items: 30, Orders: 40}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	for _, d := range db.Docs {
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			t.Fatal(err)
		}
		r.AddDocument(doc)
	}
	r.Finish()
	return r
}

func TestAnalyzeRecoversArticleStructure(t *testing.T) {
	r := analyzeClass(t, core.TCMD)
	if r.Documents != 8 {
		t.Fatalf("documents = %d", r.Documents)
	}
	sec := r.Elements["sec"]
	if sec == nil || !sec.Recursive {
		t.Fatal("sec not detected as recursive (Figure 2's back edge)")
	}
	if art := r.Elements["article"]; art == nil || art.Attrs["id"] != 8 {
		t.Fatalf("article/@id not counted: %+v", r.Elements["article"])
	}
	// genre is optional under prolog.
	cs := r.Children["prolog/genre"]
	if cs == nil || !cs.Optional {
		t.Fatal("prolog/genre should be optional")
	}
	// title is mandatory under prolog.
	if cs := r.Children["prolog/title"]; cs == nil || cs.Optional {
		t.Fatal("prolog/title should be mandatory")
	}
	if cs := r.Children["prolog/title"]; cs.Fitted == nil {
		t.Fatal("no distribution fitted")
	}
}

func TestAnalyzeDetectsMixedContent(t *testing.T) {
	r := analyzeClass(t, core.TCSD)
	qt := r.Elements["qt"]
	if qt == nil || qt.Mixed == 0 {
		t.Fatal("qt mixed content not detected")
	}
	entry := r.Elements["entry"]
	if entry == nil || entry.Count != 40 {
		t.Fatalf("entry count = %+v", entry)
	}
	// entry has 1..n senses, mandatory.
	cs := r.Children["entry/sense"]
	if cs == nil || cs.Optional {
		t.Fatal("entry/sense should be mandatory")
	}
	lo, _ := cs.Fitted.Bounds()
	if lo < 1 {
		t.Fatalf("sense occurrence lower bound %g < 1", lo)
	}
	// pr is optional.
	if cs := r.Children["entry/pr"]; cs == nil || !cs.Optional {
		t.Fatal("entry/pr should be optional")
	}
}

func TestAnalyzeFlatDocuments(t *testing.T) {
	r := analyzeClass(t, core.DCMD)
	// Flat translation: each column of a country row becomes a leaf
	// sub-element, and those leaves have no element children of their own.
	if cs := r.Children["country/co_name"]; cs == nil || cs.Optional {
		t.Fatal("country/co_name missing or optional")
	}
	for key := range r.Children {
		if strings.HasPrefix(key, "co_name/") || strings.HasPrefix(key, "co_currency/") {
			t.Fatalf("FT column leaf has children: %s", key)
		}
	}
	if r.Elements["order_line"] == nil {
		t.Fatal("order_line missing from inventory")
	}
	// order_line/comment is optional.
	if cs := r.Children["order_line/comment"]; cs == nil || !cs.Optional {
		t.Fatal("order_line/comment should be optional")
	}
}

func TestReportWriting(t *testing.T) {
	r := analyzeClass(t, core.DCSD)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"element type(s)", "item", "@id", "catalog/item", "fit="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestEmptyReport(t *testing.T) {
	r := New()
	r.Finish()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Analyzed 0 document(s)") {
		t.Fatal("empty report header wrong")
	}
}
