// Package analyze reimplements the statistical analysis the XBench authors
// ran over real corpora to design the database generators (paper §2.1.1):
// for a set of XML documents it collects the element type inventory,
// parent/child relationships, the occurrence distribution of each child
// element under its parent, value-length distributions, and attribute
// usage — then fits standard probability distributions to each parameter.
//
// It closes the loop for the reproduction: analyzing our own generated
// databases recovers the schema structure of Figures 1-4 and distribution
// families close to the ones the generators were built from.
package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"xbench/internal/stats"
	"xbench/internal/xmldom"
)

// ChildStat describes the occurrence of one child element type under one
// parent element type.
type ChildStat struct {
	Parent, Child string
	// Occurrences holds, per parent instance, the number of child
	// instances.
	Occurrences *stats.Histogram
	// Optional is true when at least one parent instance has no child of
	// this type (a dotted box in the paper's figures).
	Optional bool
	// Fitted is the distribution family fitted to the occurrence counts.
	Fitted stats.Dist
}

// ElemStat describes one element type across the corpus.
type ElemStat struct {
	Name      string
	Count     int
	TextLens  *stats.Histogram // direct text length per instance
	Mixed     int              // instances with mixed content
	Recursive bool             // appears inside itself
	Attrs     map[string]int   // attribute name -> occurrences
}

// Report is the full analysis of a document set.
type Report struct {
	Documents int
	Nodes     int
	Elements  map[string]*ElemStat
	// Children is keyed "parent/child".
	Children map[string]*ChildStat
}

// New returns an empty report ready to accept documents.
func New() *Report {
	return &Report{
		Elements: map[string]*ElemStat{},
		Children: map[string]*ChildStat{},
	}
}

// AddDocument folds one parsed document into the report.
func (r *Report) AddDocument(doc *xmldom.Node) {
	r.Documents++
	root := doc.Root()
	if root == nil {
		return
	}
	r.walk(root, map[string]bool{})
}

func (r *Report) walk(n *xmldom.Node, ancestors map[string]bool) {
	r.Nodes++
	es := r.elem(n.Name)
	es.Count++
	introduced := !ancestors[n.Name]
	if !introduced {
		es.Recursive = true
	}
	textLen := 0
	counts := map[string]int{}
	for _, c := range n.Children {
		switch c.Kind {
		case xmldom.TextKind:
			textLen += len(strings.TrimSpace(c.Data))
		case xmldom.ElementKind:
			counts[c.Name]++
		}
	}
	es.TextLens.Add(textLen)
	if n.HasMixedContent() {
		es.Mixed++
	}
	for _, a := range n.Attrs {
		es.Attrs[a.Name]++
	}
	// Record the occurrence count of each child type present in this
	// instance; optionality is derived in Finish by comparing against the
	// parent's instance count.
	for name, c := range counts {
		r.child(n.Name, name).Occurrences.Add(c)
	}
	ancestors[n.Name] = true
	for _, c := range n.Children {
		if c.Kind == xmldom.ElementKind {
			r.walk(c, ancestors)
		}
	}
	if introduced {
		delete(ancestors, n.Name)
	}
}

func (r *Report) elem(name string) *ElemStat {
	es, ok := r.Elements[name]
	if !ok {
		es = &ElemStat{Name: name, TextLens: stats.NewHistogram(), Attrs: map[string]int{}}
		r.Elements[name] = es
	}
	return es
}

func (r *Report) child(parent, child string) *ChildStat {
	key := parent + "/" + child
	cs, ok := r.Children[key]
	if !ok {
		cs = &ChildStat{Parent: parent, Child: child, Occurrences: stats.NewHistogram()}
		r.Children[key] = cs
	}
	return cs
}

// Finish fits distributions to every collected parameter. Call once after
// all documents are added.
func (r *Report) Finish() {
	for _, cs := range r.Children {
		cs.Fitted = stats.Fit(cs.Occurrences.Samples())
		// A child type whose instances-per-parent histogram misses some
		// parent instances entirely is optional; Occurrences only records
		// parents that had >= 1, so compare totals.
		parents := r.Elements[cs.Parent]
		if parents != nil && cs.Occurrences.Total() < parents.Count {
			cs.Optional = true
		}
	}
}

// ElementNames returns the element inventory sorted by descending count.
func (r *Report) ElementNames() []string {
	names := make([]string, 0, len(r.Elements))
	for n := range r.Elements {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := r.Elements[names[i]], r.Elements[names[j]]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Name < b.Name
	})
	return names
}

// WriteTo renders the analysis the way the paper's tech report presents
// it: element inventory, then parent/child structure with fitted
// occurrence distributions.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Analyzed %d document(s), %d element node(s), %d element type(s)\n\n",
		r.Documents, r.Nodes, len(r.Elements))
	fmt.Fprintf(&b, "%-24s %8s %8s %7s %10s  %s\n",
		"element", "count", "avg-text", "mixed", "recursive", "attributes")
	for _, name := range r.ElementNames() {
		es := r.Elements[name]
		avgText := 0.0
		if es.TextLens.Total() > 0 {
			s := stats.Summarize(es.TextLens.Samples())
			avgText = s.Mean
		}
		var attrs []string
		for a := range es.Attrs {
			attrs = append(attrs, "@"+a)
		}
		sort.Strings(attrs)
		fmt.Fprintf(&b, "%-24s %8d %8.1f %7d %10v  %s\n",
			name, es.Count, avgText, es.Mixed, es.Recursive, strings.Join(attrs, " "))
	}
	b.WriteString("\nparent/child occurrence distributions:\n")
	keys := make([]string, 0, len(r.Children))
	for k := range r.Children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cs := r.Children[k]
		marker := ""
		if cs.Optional {
			marker = " (optional)"
		}
		fmt.Fprintf(&b, "  %-32s n=%-6d fit=%v%s\n",
			k, cs.Occurrences.Total(), cs.Fitted, marker)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
