package gen

import (
	"bytes"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/textgen"
	"xbench/internal/xmldom"
	"xbench/internal/xmlschema"
)

// tiny returns a fast configuration for tests.
func tiny() Config {
	return Config{DictEntries: 40, Articles: 6, Items: 25, Orders: 40}
}

func TestGenerateAllClassesParseAndValidate(t *testing.T) {
	for _, class := range core.Classes {
		db, err := tiny().Generate(class, core.Small)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if db.Class != class || db.Size != core.Small || len(db.Docs) == 0 {
			t.Fatalf("%s: bad database descriptor", class)
		}
		schema := xmlschema.For(class)
		for _, d := range db.Docs {
			doc, err := xmldom.Parse(d.Data)
			if err != nil {
				t.Fatalf("%s %s: unparseable: %v", class, d.Name, err)
			}
			if err := schema.Validate(doc); err != nil {
				t.Fatalf("%s %s: schema violation: %v", class, d.Name, err)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, class := range core.Classes {
		a, err := tiny().Generate(class, core.Small)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tiny().Generate(class, core.Small)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Docs) != len(b.Docs) {
			t.Fatalf("%s: doc count differs", class)
		}
		for i := range a.Docs {
			if a.Docs[i].Name != b.Docs[i].Name || !bytes.Equal(a.Docs[i].Data, b.Docs[i].Data) {
				t.Fatalf("%s: doc %s not byte-identical across generations", class, a.Docs[i].Name)
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	cfg1, cfg2 := tiny(), tiny()
	cfg2.Seed = 99
	a, _ := cfg1.Generate(core.TCSD, core.Small)
	b, _ := cfg2.Generate(core.TCSD, core.Small)
	if bytes.Equal(a.Docs[0].Data, b.Docs[0].Data) {
		t.Fatal("different seeds gave identical dictionary")
	}
}

func TestSizeScaling(t *testing.T) {
	small, err := tiny().Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := tiny().Generate(core.DCMD, core.Normal)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(normal.Bytes()) / float64(small.Bytes())
	if ratio < 6 || ratio > 14 {
		t.Fatalf("Normal/Small byte ratio = %.1f, want ~10", ratio)
	}
	// Document count for DC/MD also scales ~10x (order documents dominate).
	if len(normal.Docs) < 8*len(small.Docs) {
		t.Fatalf("DC/MD doc count did not scale: %d -> %d", len(small.Docs), len(normal.Docs))
	}
}

func TestDictionaryStructure(t *testing.T) {
	db, err := tiny().Generate(core.TCSD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	if db.Docs[0].Name != "dictionary.xml" {
		t.Fatalf("doc name %q", db.Docs[0].Name)
	}
	n, err := DictionaryEntryCount(db.Docs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("entry_num not honored: %d entries", n)
	}
	doc := xmldom.MustParse(string(db.Docs[0].Data))
	entries := doc.Root().ChildElements("entry")
	// Workload binding: entry i has headword Headword(i) and id e<i+1>.
	for i, e := range entries[:5] {
		if hw := e.FirstChild("hw").Text(); hw != textgen.Headword(i) {
			t.Fatalf("entry %d hw = %q, want %q", i, hw, textgen.Headword(i))
		}
		if id, _ := e.Attr("id"); id != "e"+string(rune('1'+i)) {
			t.Fatalf("entry %d id = %q", i, id)
		}
	}
	// Mixed content must actually occur (qt elements).
	mixed := 0
	doc.Walk(func(nd *xmldom.Node) bool {
		if nd.Kind == xmldom.ElementKind && nd.Name == "qt" && nd.HasMixedContent() {
			mixed++
		}
		return true
	})
	if mixed == 0 {
		t.Fatal("no mixed-content qt elements generated")
	}
}

func TestArticlesStructure(t *testing.T) {
	db, err := tiny().Generate(core.TCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Docs) != 6 {
		t.Fatalf("article_num not honored: %d docs", len(db.Docs))
	}
	sawNested, sawEmptyContact, sawIntro := false, false, false
	leadAuthors := map[string]bool{}
	for i, d := range db.Docs {
		doc := xmldom.MustParse(string(d.Data))
		root := doc.Root()
		if id, _ := root.Attr("id"); id != "a"+string(rune('1'+i)) {
			t.Fatalf("article %d id = %q", i, id)
		}
		secs := root.FirstChild("body").ChildElements("sec")
		if len(secs) < 2 {
			t.Fatalf("article %d has %d top-level sections, want >= 2", i, len(secs))
		}
		if h := secs[0].FirstChild("heading"); h != nil && h.Text() == "Introduction" {
			sawIntro = true
		}
		for _, s := range secs {
			if len(s.ChildElements("sec")) > 0 {
				sawNested = true
			}
		}
		for _, a := range root.FirstChild("prolog").FirstChild("authors").ChildElements("author") {
			if c := a.FirstChild("contact"); c != nil && c.Text() == "" {
				sawEmptyContact = true
			}
		}
		lead := root.FirstChild("prolog").FirstChild("authors").
			ChildElements("author")[0].FirstChild("name").Text()
		leadAuthors[lead] = true
		if lead != textgen.FullName(i%AuthorPoolSize) {
			t.Fatalf("article %d lead author %q, want %q", i, lead, textgen.FullName(i%AuthorPoolSize))
		}
	}
	if !sawIntro {
		t.Fatal("no article has an Introduction section (Q4 undefined)")
	}
	if !sawNested {
		t.Fatal("no recursive sec-in-sec instances generated")
	}
	if !sawEmptyContact {
		t.Fatal("no empty contact elements generated (Q15 undefined)")
	}
}

func TestCatalogStructure(t *testing.T) {
	db, err := tiny().Generate(core.DCSD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmldom.MustParse(string(db.Docs[0].Data))
	items := doc.Root().ChildElements("item")
	if len(items) != 25 {
		t.Fatalf("item count = %d", len(items))
	}
	if id, _ := items[0].Attr("id"); id != "I1" {
		t.Fatalf("first item id = %q", id)
	}
	// Depth from the recursive join: item -> authors -> author ->
	// contact_information -> mailing_address -> name_of_country.
	found := false
	doc.Walk(func(n *xmldom.Node) bool {
		if n.Kind == xmldom.ElementKind && n.Name == "name_of_country" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("join depth missing: no name_of_country under authors")
	}
	// Q14 needs publishers without FAX_number.
	without := 0
	for _, it := range items {
		if p := it.FirstChild("publisher"); p != nil && p.FirstChild("FAX_number") == nil {
			without++
		}
	}
	if without == 0 {
		t.Fatal("every publisher has a fax number; Q14 would be empty")
	}
}

func TestOrdersStructure(t *testing.T) {
	db, err := tiny().Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	// 40 orders + 5 flat documents.
	if len(db.Docs) != 45 {
		t.Fatalf("doc count = %d, want 45", len(db.Docs))
	}
	names := map[string]bool{}
	for _, d := range db.Docs {
		names[d.Name] = true
	}
	for _, want := range []string{"order1.xml", "order40.xml", "customers.xml",
		"items.xml", "authors.xml", "addresses.xml", "countries.xml"} {
		if !names[want] {
			t.Fatalf("missing document %s", want)
		}
	}
	var order1 core.Doc
	for _, d := range db.Docs {
		if d.Name == "order1.xml" {
			order1 = d
		}
	}
	doc := xmldom.MustParse(string(order1.Data))
	root := doc.Root()
	if id, _ := root.Attr("id"); id != "O1" {
		t.Fatalf("order1 id = %q", id)
	}
	lines := root.FirstChild("order_lines").ChildElements("order_line")
	if len(lines) == 0 {
		t.Fatal("order1 has no order lines")
	}
	if root.FirstChild("cc_xacts") == nil {
		t.Fatal("order1 missing cc_xacts")
	}
	// The customer referenced by order1 must exist in customers.xml (Q19).
	custID := root.FirstChild("customer_id").Text()
	var custDoc core.Doc
	for _, d := range db.Docs {
		if d.Name == "customers.xml" {
			custDoc = d
		}
	}
	cdoc := xmldom.MustParse(string(custDoc.Data))
	found := false
	for _, c := range cdoc.Root().ChildElements("customer") {
		if id, _ := c.Attr("id"); id == custID {
			found = true
		}
	}
	if !found {
		t.Fatalf("order1 customer %s not in customers.xml", custID)
	}
}

func TestFlatDocumentsAreFlat(t *testing.T) {
	db, err := tiny().Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range db.Docs {
		if !strings.HasSuffix(d.Name, "s.xml") || strings.HasPrefix(d.Name, "order") {
			continue
		}
		doc := xmldom.MustParse(string(d.Data))
		// FT mapping: root -> tuple elements -> column leaves; depth 3.
		maxDepth := 0
		var walk func(n *xmldom.Node, depth int)
		walk = func(n *xmldom.Node, depth int) {
			if n.Kind == xmldom.ElementKind && depth > maxDepth {
				maxDepth = depth
			}
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		walk(doc.Root(), 1)
		if maxDepth > 3 {
			t.Fatalf("%s: flat translation has depth %d", d.Name, maxDepth)
		}
	}
}

func TestAnalyzedCorporaTable(t *testing.T) {
	if len(AnalyzedCorpora) != 4 {
		t.Fatalf("Table 2 has 4 rows, got %d", len(AnalyzedCorpora))
	}
	if AnalyzedCorpora[0].Name != "GCIDE" || AnalyzedCorpora[2].Files != 807000 {
		t.Fatal("Table 2 rows corrupted")
	}
}

func TestQuoteLocationsDomain(t *testing.T) {
	locs := QuoteLocations()
	if len(locs) < 5 {
		t.Fatalf("quotation location domain too small: %d", len(locs))
	}
	locs[0] = "mutated"
	if QuoteLocations()[0] == "mutated" {
		t.Fatal("QuoteLocations returned aliased slice")
	}
}

func TestPaperScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation skipped in -short mode")
	}
	// SizeMultiplier 25 restores the paper's absolute sizes: a Small
	// database should land near the paper's 10 MB.
	cfg := Config{SizeMultiplier: 25}
	for _, class := range core.Classes {
		db, err := cfg.Generate(class, core.Small)
		if err != nil {
			t.Fatal(err)
		}
		mb := float64(db.Bytes()) / (1 << 20)
		if mb < 4 || mb > 25 {
			t.Errorf("%s at scale 25: %.1f MB, want roughly the paper's 10 MB", class, mb)
		}
	}
}

func TestHugeSizeGeneratesAtTinyBase(t *testing.T) {
	// Huge is 1000x Small; at a tiny base config it stays tractable and
	// must preserve the scaling contract (entry_num = base * 1000).
	cfg := Config{DictEntries: 2, Articles: 1, Items: 2, Orders: 2}
	db, err := cfg.Generate(core.TCSD, core.Huge)
	if err != nil {
		t.Fatal(err)
	}
	n, err := DictionaryEntryCount(db.Docs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("Huge entry count = %d, want 2000", n)
	}
}
