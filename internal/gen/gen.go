// Package gen builds the four XBench benchmark databases (paper §2.1):
// the TC/SD dictionary, the TC/MD article corpus, the DC/SD catalog and
// the DC/MD order/flat-document set. Text-centric classes are produced by
// ToXgene-style templates (internal/toxgene); data-centric classes are
// mapped from a deterministic TPC-W population (internal/tpcw) using the
// paper's nesting join (catalog.xml) and flat translation (FT) mappings.
//
// Databases are deterministic in (class, size, seed): regenerating always
// yields byte-identical documents.
package gen

import (
	"fmt"

	"xbench/internal/core"
)

// Config controls database generation. The zero value uses defaults
// calibrated so a Small database is roughly 0.4 MB — the paper's 10 MB /
// 100 MB / 1 GB steps shrunk ~25x so the full benchmark grid runs in CI
// while preserving the 10x spacing between sizes. Scale up with
// SizeMultiplier (25 reproduces the paper's absolute sizes).
type Config struct {
	// Seed drives all randomness. The default 0 is a valid seed.
	Seed uint64
	// DictEntries is entry_num at Small (paper default 7333 at Normal,
	// i.e. 733 at Small paper-scale).
	DictEntries int
	// Articles is article_num at Small (paper default 266 at Normal).
	Articles int
	// Items is the TPC-W ITEM count at Small (drives DC/SD).
	Items int
	// Orders is the TPC-W ORDERS count at Small (drives DC/MD).
	Orders int
	// SizeMultiplier scales every count; 0 means 1.
	SizeMultiplier int
}

// Defaults for the Small scale (~0.4 MB per database).
const (
	DefaultDictEntries = 400
	DefaultArticles    = 30
	DefaultItems       = 160
	DefaultOrders      = 320
)

func (c Config) withDefaults() Config {
	if c.DictEntries == 0 {
		c.DictEntries = DefaultDictEntries
	}
	if c.Articles == 0 {
		c.Articles = DefaultArticles
	}
	if c.Items == 0 {
		c.Items = DefaultItems
	}
	if c.Orders == 0 {
		c.Orders = DefaultOrders
	}
	if c.SizeMultiplier == 0 {
		c.SizeMultiplier = 1
	}
	return c
}

// Generate builds the database for one class at one size using default
// configuration.
func Generate(class core.Class, size core.Size) (*core.Database, error) {
	return Config{}.Generate(class, size)
}

// Generate builds the database for one class at one size.
func (c Config) Generate(class core.Class, size core.Size) (*core.Database, error) {
	c = c.withDefaults()
	f := size.Factor() * c.SizeMultiplier
	switch class {
	case core.TCSD:
		return c.genDictionary(size, c.DictEntries*f)
	case core.TCMD:
		return c.genArticles(size, c.Articles*f)
	case core.DCSD:
		return c.genCatalog(size, c.Items*f)
	case core.DCMD:
		return c.genOrders(size, c.Orders*f)
	}
	return nil, fmt.Errorf("gen: unknown class %v", class)
}

// SourceCorpus describes one of the real corpora the paper analyzed to
// derive the TC class statistics (paper Table 2). We cannot redistribute
// the corpora; these rows document the provenance that shaped the
// distributions hard-coded in this package.
type SourceCorpus struct {
	Name     string
	Files    int
	FileSize string // as printed in Table 2
	DataMB   int
}

// AnalyzedCorpora reproduces paper Table 2.
var AnalyzedCorpora = []SourceCorpus{
	{Name: "GCIDE", Files: 1, FileSize: "56 MB", DataMB: 56},
	{Name: "OED", Files: 1, FileSize: "548 MB", DataMB: 548},
	{Name: "Reuters", Files: 807000, FileSize: "[1, 59] KB", DataMB: 2484},
	{Name: "Springer", Files: 196000, FileSize: "[1, 613] KB", DataMB: 1343},
}
