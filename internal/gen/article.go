package gen

import (
	"fmt"
	"strconv"

	"xbench/internal/core"
	"xbench/internal/stats"
	"xbench/internal/textgen"
	"xbench/internal/toxgene"
)

var genres = []string{"news", "analysis", "editorial", "review", "survey", "letter"}

// AuthorPoolSize is the number of distinct article author names; names
// recur across articles so Q2/Q4's "articles authored by Y" match several
// documents.
const AuthorPoolSize = 40

// genArticles produces the TC/MD database: articleNum articleXXX.xml
// documents with sizes ranging from a few KB to a few hundred KB
// (paper: article_num, default 266 at ~100 MB).
func (c Config) genArticles(size core.Size, articleNum int) (*core.Database, error) {
	docs := make([]core.Doc, 0, articleNum)
	root := stats.NewRNG(c.Seed ^ 0xA271C1E)
	// Per-article size factors are drawn from an exponential so the corpus
	// mixes many small and a few very large documents, matching the paper's
	// "several kilobytes to several hundred kilobytes".
	sizeDist := stats.Exponential{Lambda: 0.6, Min: 1, Max: 40}
	for i := 0; i < articleNum; i++ {
		r := root.Split(uint64(i))
		factor := sizeDist.Draw(r)
		tmpl := articleTmpl(i, articleNum, factor)
		data, err := toxgene.Document(tmpl, c.Seed^(0xA271<<8)^uint64(i))
		if err != nil {
			return nil, err
		}
		docs = append(docs, core.Doc{
			Name: fmt.Sprintf("article%d.xml", i+1),
			Data: data,
		})
	}
	return &core.Database{Class: core.TCMD, Size: size, Docs: docs}, nil
}

// articleTmpl builds the template for article index i (0-based). factor
// scales the amount of prose in the body.
func articleTmpl(i, articleNum int, factor float64) *toxgene.Tmpl {
	prose := func(ctx *toxgene.Ctx) *textgen.Text { return textgen.NewText(ctx.R) }
	paraCount := stats.Exponential{Lambda: 0.9 / factor, Min: 1, Max: 12 * factor}

	para := &toxgene.Tmpl{
		Name:  "p",
		Count: paraCount,
		Content: func(ctx *toxgene.Ctx) string {
			return prose(ctx).Paragraph(2 + ctx.R.Intn(4))
		},
	}

	// Sections recurse (Figure 2's back edge): depth-limited here so the
	// template expansion terminates while still producing sec-inside-sec
	// instances that defeat naive relational chain mappings (§3.1.3 item 4).
	var secTmpl func(depth int, topLevel bool) *toxgene.Tmpl
	secTmpl = func(depth int, topLevel bool) *toxgene.Tmpl {
		t := &toxgene.Tmpl{
			Name:  "sec",
			Count: stats.Uniform{Lo: 2, Hi: 5.4},
			Attrs: []toxgene.AttrTmpl{{
				// The unique id added to solve the shredding chain-relationship
				// problem (paper §3.1.3 item 4). The full occurrence path makes
				// it unique even for sections nested inside sections.
				Name: "id",
				Value: func(ctx *toxgene.Ctx) string {
					id := fmt.Sprintf("a%d-s", i+1)
					for d, idx := range ctx.Path[2:] { // skip article, body
						if d > 0 {
							id += "."
						}
						id += strconv.Itoa(idx + 1)
					}
					return id
				},
			}},
			Children: []*toxgene.Tmpl{
				{
					Name: "heading",
					Prob: 0.9,
					Content: func(ctx *toxgene.Ctx) string {
						if topLevel && ctx.IndexAt(2) == 0 {
							// The first top-level section is always entitled
							// "Introduction" so Q4 (the section following it)
							// is well defined in every article.
							return "Introduction"
						}
						return headingCase(prose(ctx).Words(1 + ctx.R.Intn(3)))
					},
				},
				para,
			},
		}
		if depth > 0 {
			t.Children = append(t.Children, secTmpl(depth-1, false))
		}
		if !topLevel {
			t.Count = stats.Uniform{Lo: 0, Hi: 1.4}
		}
		return t
	}

	author := &toxgene.Tmpl{
		Name:  "author",
		Count: stats.Uniform{Lo: 1, Hi: 3.4},
		Children: []*toxgene.Tmpl{
			{Name: "name", Content: func(ctx *toxgene.Ctx) string {
				if ctx.Index() == 0 {
					// The lead author cycles deterministically through the
					// pool so "articles authored by Y" is non-empty for any
					// pool name; article i's lead author is FullName(i%pool).
					return textgen.FullName(i % AuthorPoolSize)
				}
				return textgen.FullName(ctx.R.Intn(AuthorPoolSize))
			}},
			{Name: "affiliation", Prob: 0.7, Content: func(ctx *toxgene.Ctx) string {
				return headingCase(prose(ctx).Words(2)) + " Institute"
			}},
			{
				Name: "contact",
				Prob: 0.8,
				Content: func(ctx *toxgene.Ctx) string {
					// A quarter of present contact elements are empty —
					// the Q15 irregularity.
					if ctx.R.Bool(0.25) {
						return ""
					}
					return textgen.Email(textgen.FullName(ctx.R.Intn(AuthorPoolSize)), ctx.R.Intn(100))
				},
			},
			{Name: "bio", Prob: 0.4, Content: func(ctx *toxgene.Ctx) string {
				return prose(ctx).Sentence(8, 20)
			}},
		},
	}

	prolog := &toxgene.Tmpl{
		Name: "prolog",
		Children: []*toxgene.Tmpl{
			{Name: "title", Content: func(ctx *toxgene.Ctx) string {
				return headingCase(prose(ctx).Words(3 + ctx.R.Intn(5)))
			}},
			{Name: "genre", Prob: 0.7, Content: func(ctx *toxgene.Ctx) string {
				return genres[ctx.R.Intn(len(genres))]
			}},
			{
				Name: "dateline",
				Prob: 0.85,
				Children: []*toxgene.Tmpl{
					{Name: "date", Content: func(ctx *toxgene.Ctx) string {
						// Articles are dated by index so date-range workload
						// parameters select a predictable slice of the corpus.
						return textgen.Date(i * (9 * 360) / max(articleNum, 1))
					}},
					{Name: "country", Prob: 0.6, Content: func(ctx *toxgene.Ctx) string {
						return textgen.Country(ctx.R.Intn(textgen.CountryCount()))
					}},
				},
			},
			{Name: "authors", Children: []*toxgene.Tmpl{author}},
			{
				Name: "abstract",
				Prob: 0.8,
				Children: []*toxgene.Tmpl{{
					Name:  "p",
					Count: stats.Uniform{Lo: 1, Hi: 2.4},
					Content: func(ctx *toxgene.Ctx) string {
						return prose(ctx).Paragraph(2)
					},
				}},
			},
			{
				Name: "keywords",
				Prob: 0.9,
				Children: []*toxgene.Tmpl{{
					Name:  "kw",
					Count: stats.Uniform{Lo: 2, Hi: 6.4},
					Content: func(ctx *toxgene.Ctx) string {
						return prose(ctx).Word()
					},
				}},
			},
		},
	}

	epilog := &toxgene.Tmpl{
		Name: "epilog",
		Prob: 0.6,
		Children: []*toxgene.Tmpl{{
			Name: "references",
			Prob: 0.8,
			Children: []*toxgene.Tmpl{{
				Name:  "a_id",
				Count: stats.Uniform{Lo: 1, Hi: 6.4},
				Attrs: []toxgene.AttrTmpl{{
					Name: "target",
					Value: func(ctx *toxgene.Ctx) string {
						return "a" + strconv.Itoa(1+ctx.R.Intn(max(articleNum, 1)))
					},
				}},
				Content: func(ctx *toxgene.Ctx) string {
					return "article " + strconv.Itoa(1+ctx.R.Intn(max(articleNum, 1)))
				},
			}},
		}},
	}

	return &toxgene.Tmpl{
		Name: "article",
		Attrs: []toxgene.AttrTmpl{{
			Name:  "id",
			Value: toxgene.Const("a" + strconv.Itoa(i+1)),
		}},
		Children: []*toxgene.Tmpl{
			prolog,
			{Name: "body", Children: []*toxgene.Tmpl{secTmpl(2, true)}},
			epilog,
		},
	}
}

// headingCase uppercases the first letter of each word.
func headingCase(s string) string {
	out := []byte(s)
	up := true
	for i, c := range out {
		if up && c >= 'a' && c <= 'z' {
			out[i] = c - 'a' + 'A'
		}
		up = c == ' '
	}
	return string(out)
}
