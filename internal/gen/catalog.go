package gen

import (
	"strconv"

	"xbench/internal/core"
	"xbench/internal/tpcw"
	"xbench/internal/xmldom"
)

// genCatalog produces the DC/SD database: a single catalog.xml mapped from
// the TPC-W population with ITEM as the base table, joined recursively with
// AUTHOR, AUTHOR_2, PUBLISHER, ADDRESS and COUNTRY (paper §2.1.2): matching
// tuples of each joined table become sub-elements, adding depth.
func (c Config) genCatalog(size core.Size, itemNum int) (*core.Database, error) {
	data := tpcw.Generate(c.Seed^0xDC5D, tpcw.Counts{Items: itemNum})
	e := xmldom.NewEncoder()
	e.Begin("catalog")
	for i := range data.Items {
		emitCatalogItem(e, data, &data.Items[i])
	}
	e.End()
	b, err := e.Bytes()
	if err != nil {
		return nil, err
	}
	return &core.Database{
		Class: core.DCSD,
		Size:  size,
		Docs:  []core.Doc{{Name: "catalog.xml", Data: b}},
	}, nil
}

func emitCatalogItem(e *xmldom.Encoder, d *tpcw.Data, it *tpcw.Item) {
	e.Begin("item", "id", it.ID)
	e.Leaf("title", it.Title)
	e.Leaf("date_of_release", it.PubDate)
	e.Leaf("subject", it.Subject)
	if it.Desc != "" {
		e.Leaf("description", it.Desc)
	}
	e.Begin("attributes")
	e.Leaf("srp", it.SRP)
	e.Leaf("cost", it.Cost)
	e.Leaf("avail", it.Avail)
	e.Leaf("isbn", it.ISBN)
	e.Leaf("number_of_pages", strconv.Itoa(it.Pages))
	e.Leaf("backing", it.Backing)
	e.Begin("dimensions")
	e.Leaf("length", it.Length)
	e.Leaf("width", it.Width)
	e.Leaf("height", it.Height)
	e.End() // dimensions
	e.End() // attributes
	e.Begin("authors")
	for _, aid := range it.AuthorIDs {
		emitCatalogAuthor(e, d, aid)
	}
	e.End() // authors
	if pub, ok := d.PublisherByID(it.PubID); ok {
		e.Begin("publisher")
		e.Leaf("name", pub.Name)
		if pub.Fax != "" {
			e.Leaf("FAX_number", pub.Fax)
		}
		e.Leaf("phone_number", pub.Phone)
		e.Leaf("email_address", pub.Email)
		e.End()
	}
	e.End() // item
}

func emitCatalogAuthor(e *xmldom.Encoder, d *tpcw.Data, authorID string) {
	a, a2, ok := d.AuthorByID(authorID)
	if !ok {
		return
	}
	e.Begin("author")
	e.Begin("name")
	e.Leaf("first_name", a.FName)
	if a.MName != "" {
		e.Leaf("middle_name", a.MName)
	}
	e.Leaf("last_name", a.LName)
	e.End() // name
	e.Leaf("date_of_birth", a.DOB)
	e.Leaf("biography", a.Bio)
	e.Begin("contact_information")
	if addr, ok := d.AddressByID(a2.AddrID); ok {
		e.Begin("mailing_address")
		e.Leaf("street_address1", addr.Street1)
		if addr.Street2 != "" {
			e.Leaf("street_address2", addr.Street2)
		}
		e.Leaf("city", addr.City)
		if addr.State != "" {
			e.Leaf("state", addr.State)
		}
		e.Leaf("zip_code", addr.Zip)
		if co, ok := d.CountryByID(addr.CountryID); ok {
			e.Leaf("name_of_country", co.Name)
		}
		e.End() // mailing_address
	}
	if a2.Phone != "" {
		e.Leaf("phone_number", a2.Phone)
	}
	if a2.Email != "" {
		e.Leaf("email_address", a2.Email)
	}
	e.End() // contact_information
	e.End() // author
}
