package gen

import (
	"fmt"
	"strconv"

	"xbench/internal/core"
	"xbench/internal/tpcw"
	"xbench/internal/xmldom"
)

// genOrders produces the DC/MD database: one orderXXX.xml per TPC-W order
// (ORDERS ⋈ ORDER_LINE ⋈ CC_XACTS joined into one document each), plus the
// five flat-translation documents Customer, Item, Author, Address and
// Country where each tuple maps to an element instance and each column to
// a sub-element (paper §2.1.2, FT approach).
func (c Config) genOrders(size core.Size, orderNum int) (*core.Database, error) {
	// The flat documents carry a proportional slice of the population.
	data := tpcw.Generate(c.Seed^0xDC3D, tpcw.Counts{
		Orders: orderNum,
		Items:  max(1, orderNum/4),
	})
	docs := make([]core.Doc, 0, orderNum+5)
	for i := range data.Orders {
		b, err := emitOrderDoc(data, &data.Orders[i], &data.CCXacts[i])
		if err != nil {
			return nil, err
		}
		docs = append(docs, core.Doc{
			Name: fmt.Sprintf("order%d.xml", i+1),
			Data: b,
		})
	}
	for _, ft := range []struct {
		name string
		emit func(*xmldom.Encoder, *tpcw.Data)
	}{
		{"customers.xml", emitCustomersFT},
		{"items.xml", emitItemsFT},
		{"authors.xml", emitAuthorsFT},
		{"addresses.xml", emitAddressesFT},
		{"countries.xml", emitCountriesFT},
	} {
		e := xmldom.NewEncoder()
		ft.emit(e, data)
		b, err := e.Bytes()
		if err != nil {
			return nil, err
		}
		docs = append(docs, core.Doc{Name: ft.name, Data: b})
	}
	return &core.Database{Class: core.DCMD, Size: size, Docs: docs}, nil
}

func emitOrderDoc(d *tpcw.Data, o *tpcw.Order, x *tpcw.CCXact) ([]byte, error) {
	e := xmldom.NewEncoder()
	e.Begin("order", "id", o.ID)
	e.Leaf("customer_id", o.CustomerID)
	e.Leaf("order_date", o.Date)
	e.Leaf("sub_total", o.SubTotal)
	e.Leaf("tax", o.Tax)
	e.Leaf("total", o.Total)
	e.Leaf("ship_type", o.ShipType)
	e.Leaf("ship_date", o.ShipDate)
	e.Leaf("ship_addr_id", o.ShipAddrID)
	// order_status may legitimately be empty (irregular data), in which
	// case an empty element is still emitted.
	e.Begin("order_status").Text(o.Status).End()
	e.Begin("cc_xacts")
	e.Leaf("cc_type", x.Type)
	e.Leaf("cc_number", x.Number)
	e.Leaf("cc_name", x.Name)
	e.Leaf("cc_expiry", x.Expiry)
	e.Leaf("cc_auth_id", x.AuthID)
	e.Leaf("total_amount", x.Amount)
	if x.Country != "" {
		e.Leaf("ship_country", x.Country)
	}
	e.End() // cc_xacts
	e.Begin("order_lines")
	for _, ol := range d.LinesOf(o.ID) {
		e.Begin("order_line")
		e.Leaf("item_id", ol.ItemID)
		e.Leaf("qty", strconv.Itoa(ol.Qty))
		e.Leaf("discount", ol.Discount)
		if ol.Comment != "" {
			e.Leaf("comment", ol.Comment)
		}
		e.End()
	}
	e.End() // order_lines
	e.End() // order
	return e.Bytes()
}

func emitCustomersFT(e *xmldom.Encoder, d *tpcw.Data) {
	e.Begin("customers")
	for _, c := range d.Customers {
		e.Begin("customer", "id", c.ID)
		e.Leaf("c_uname", c.UName)
		e.Leaf("c_fname", c.FName)
		e.Leaf("c_lname", c.LName)
		e.Leaf("c_phone", c.Phone)
		e.Leaf("c_email", c.Email)
		e.Leaf("c_since", c.Since)
		e.Leaf("c_discount", c.Discount)
		e.Leaf("c_addr_id", c.AddrID)
		e.End()
	}
	e.End()
}

func emitItemsFT(e *xmldom.Encoder, d *tpcw.Data) {
	e.Begin("items")
	for _, it := range d.Items {
		e.Begin("flat_item", "id", it.ID)
		e.Leaf("i_title", it.Title)
		e.Leaf("i_a_id", it.AuthorIDs[0])
		e.Leaf("i_pub_date", it.PubDate)
		e.Leaf("i_publisher", it.PubID)
		e.Leaf("i_subject", it.Subject)
		e.Leaf("i_cost", it.Cost)
		e.Leaf("i_isbn", it.ISBN)
		e.Leaf("i_page", strconv.Itoa(it.Pages))
		e.End()
	}
	e.End()
}

func emitAuthorsFT(e *xmldom.Encoder, d *tpcw.Data) {
	e.Begin("authors")
	for _, a := range d.Authors {
		e.Begin("flat_author", "id", a.ID)
		e.Leaf("a_fname", a.FName)
		e.Leaf("a_lname", a.LName)
		if a.MName != "" {
			e.Leaf("a_mname", a.MName)
		}
		e.Leaf("a_dob", a.DOB)
		e.Leaf("a_bio", a.Bio)
		e.End()
	}
	e.End()
}

func emitAddressesFT(e *xmldom.Encoder, d *tpcw.Data) {
	e.Begin("addresses")
	for _, a := range d.Addresses {
		e.Begin("address", "id", a.ID)
		e.Leaf("addr_street1", a.Street1)
		if a.Street2 != "" {
			e.Leaf("addr_street2", a.Street2)
		}
		e.Leaf("addr_city", a.City)
		e.Leaf("addr_state", a.State)
		e.Leaf("addr_zip", a.Zip)
		e.Leaf("addr_co_id", a.CountryID)
		e.End()
	}
	e.End()
}

func emitCountriesFT(e *xmldom.Encoder, d *tpcw.Data) {
	e.Begin("countries")
	for _, c := range d.Countries {
		e.Begin("country", "id", c.ID)
		e.Leaf("co_name", c.Name)
		e.Leaf("co_exchange", c.Exchange)
		e.Leaf("co_currency", c.Currency)
		e.End()
	}
	e.End()
}
