package gen

import (
	"strconv"

	"xbench/internal/core"
	"xbench/internal/stats"
	"xbench/internal/textgen"
	"xbench/internal/toxgene"
	"xbench/internal/xmldom"
)

// Quotation locations form a small domain so Q3's grouping by quotation
// location produces a meaningful aggregate.
var quoteLocations = []string{
	"London", "Paris", "Boston", "Oxford", "Cambridge", "Edinburgh",
	"Dublin", "New York", "Toronto", "Chicago", "Philadelphia", "Leiden",
}

// QuoteLocations exposes the domain for tests and workload selectivity
// calculations.
func QuoteLocations() []string { return append([]string(nil), quoteLocations...) }

var posValues = []string{"n.", "v.", "adj.", "adv.", "prep.", "conj."}

// genDictionary produces the TC/SD database: a single dictionary.xml with
// entryNum word entries (paper: entry_num, default 7333 at 100 MB).
func (c Config) genDictionary(size core.Size, entryNum int) (*core.Database, error) {
	tmpl := dictionaryTmpl(entryNum)
	data, err := toxgene.Document(tmpl, c.Seed^0xD1C7)
	if err != nil {
		return nil, err
	}
	return &core.Database{
		Class: core.TCSD,
		Size:  size,
		Docs:  []core.Doc{{Name: "dictionary.xml", Data: data}},
	}, nil
}

// entryIdx returns the occurrence index of the enclosing entry element
// (template depth 1: dictionary=0, entry=1).
func entryIdx(ctx *toxgene.Ctx) int { return ctx.IndexAt(1) }

func dictionaryTmpl(entryNum int) *toxgene.Tmpl {
	n := float64(entryNum)
	prose := func(ctx *toxgene.Ctx) *textgen.Text { return textgen.NewText(ctx.R) }

	crTmpl := func(count stats.Dist, prob float64) *toxgene.Tmpl {
		return &toxgene.Tmpl{
			Name:  "cr",
			Count: count,
			Prob:  prob,
			Attrs: []toxgene.AttrTmpl{{
				Name: "target",
				Value: func(ctx *toxgene.Ctx) string {
					return "e" + strconv.Itoa(1+ctx.R.Intn(entryNum))
				},
			}},
			Content: func(ctx *toxgene.Ctx) string {
				return textgen.Headword(ctx.R.Intn(entryNum))
			},
		}
	}

	qt := &toxgene.Tmpl{
		Name: "qt", // mixed content: text, inline <i>/<b>, trailing text
		Content: func(ctx *toxgene.Ctx) string {
			return prose(ctx).Sentence(6, 16) + " "
		},
		Children: []*toxgene.Tmpl{
			{
				Name:  "i",
				Count: stats.Uniform{Lo: 0, Hi: 1.4},
				Content: func(ctx *toxgene.Ctx) string {
					return prose(ctx).Words(1 + ctx.R.Intn(2))
				},
			},
			{
				Name:  "b",
				Count: stats.Uniform{Lo: 0, Hi: 1.2},
				Content: func(ctx *toxgene.Ctx) string {
					return prose(ctx).Words(1)
				},
			},
		},
		Tail: func(ctx *toxgene.Ctx) string {
			return " " + prose(ctx).Sentence(4, 12)
		},
	}

	q := &toxgene.Tmpl{
		Name:  "q",
		Count: stats.Uniform{Lo: 1, Hi: 2.4},
		Children: []*toxgene.Tmpl{
			{Name: "qd", Content: func(ctx *toxgene.Ctx) string {
				return textgen.Date(ctx.R.Intn(9 * 360))
			}},
			{Name: "a", Content: func(ctx *toxgene.Ctx) string {
				return textgen.FullName(ctx.R.Intn(60))
			}},
			{Name: "loc", Content: func(ctx *toxgene.Ctx) string {
				return quoteLocations[ctx.R.Intn(len(quoteLocations))]
			}},
			qt,
		},
	}

	sense := &toxgene.Tmpl{
		Name:  "sense",
		Count: stats.Exponential{Lambda: 0.8, Min: 1, Max: 6},
		Children: []*toxgene.Tmpl{
			{Name: "def", Content: func(ctx *toxgene.Ctx) string {
				return prose(ctx).Paragraph(1 + ctx.R.Intn(2))
			}},
			crTmpl(stats.Uniform{Lo: 0, Hi: 1.3}, 0),
			{
				Name:     "qp",
				Count:    stats.Exponential{Lambda: 1.1, Min: 1, Max: 4},
				Children: []*toxgene.Tmpl{q},
			},
		},
	}

	entry := &toxgene.Tmpl{
		Name:  "entry",
		Count: stats.Uniform{Lo: n, Hi: n}, // exactly entryNum entries
		Attrs: []toxgene.AttrTmpl{{
			Name: "id",
			Value: func(ctx *toxgene.Ctx) string {
				return "e" + strconv.Itoa(entryIdx(ctx)+1)
			},
		}},
		Children: []*toxgene.Tmpl{
			{Name: "hw", Content: func(ctx *toxgene.Ctx) string {
				return textgen.Headword(entryIdx(ctx))
			}},
			{Name: "pr", Prob: 0.6, Content: func(ctx *toxgene.Ctx) string {
				return "/" + textgen.Syllable(ctx.R.Intn(2250)) + "'" +
					textgen.Syllable(ctx.R.Intn(2250)) + "/"
			}},
			{Name: "pos", Content: func(ctx *toxgene.Ctx) string {
				return posValues[ctx.R.Intn(len(posValues))]
			}},
			{
				Name: "etym",
				Prob: 0.5,
				Content: func(ctx *toxgene.Ctx) string {
					return "From " + prose(ctx).Words(2+ctx.R.Intn(3)) + " "
				},
				Children: []*toxgene.Tmpl{crTmpl(stats.Uniform{Lo: 0, Hi: 1.2}, 0)},
				Tail: func(ctx *toxgene.Ctx) string {
					return ", " + prose(ctx).Words(1+ctx.R.Intn(3)) + "."
				},
			},
			sense,
		},
	}

	return &toxgene.Tmpl{Name: "dictionary", Children: []*toxgene.Tmpl{entry}}
}

// DictionaryEntryCount parses a generated dictionary document and counts
// its entries; used by size-calibration tests.
func DictionaryEntryCount(data []byte) (int, error) {
	doc, err := xmldom.Parse(data)
	if err != nil {
		return 0, err
	}
	return len(doc.Root().ChildElements("entry")), nil
}
