// Package updatelog is the logical redo journal that makes document
// updates (U1 insert, U2 replace, U3 delete) crash-atomic on every
// engine.
//
// The pager's physical WAL guarantees page-level durability — recovery
// restores exactly the page images that were written back before the
// crash — but an update is a multi-page, multi-file operation (catalog
// rewrite, side-table cascade, index maintenance), so a crash mid-update
// leaves a perfectly durable *torn* store. The engines also keep volatile
// bookkeeping (heap tails, RID slices, index maps) that dies with the
// crash and has no open-from-disk path: their recovery story is "reload
// the database from the generator", which wipes uncommitted updates along
// with committed ones.
//
// The journal closes that gap with logical redo. Each engine owns one
// journal file; an update's protocol is:
//
//	validate -> journal append + sync (COMMIT POINT) -> apply to store
//
// The journal sync is the commit point: it is a single checksummed record
// append, so after a crash the record is either durably complete
// (committed — the update logically happened) or torn/absent (it never
// happened). Recovery is then: read the committed records off the
// recovered disk, reload the database (wiping any torn physical state
// and resetting the journal), and re-apply the committed updates in
// order through the engine's public update methods, which re-journal
// them. Replay is idempotent because each update was validated against
// the very prefix state replay reconstructs.
//
// The commit point is also where MVCC epochs come from (DESIGN.md §15):
// engines wrap each update in a pager mutation bracket
// (BeginMutation before the append, EndMutation after the apply), so
// the journal record at position k corresponds exactly to commit epoch
// base+k. A reader pinned at an epoch sees the database as of that
// journal prefix — all of record k's pages or none — and replay after
// a crash re-commits the surviving prefix one epoch per record,
// landing on a consistent latest epoch.
package updatelog

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"xbench/internal/core"
	"xbench/internal/pager"
)

// Kind identifies the update operation a journal record describes.
type Kind uint8

const (
	// KindInsert is a U1 document insert.
	KindInsert Kind = 1
	// KindReplace is a U2 wholesale document replacement (upsert).
	KindReplace Kind = 2
	// KindDelete is a U3 document delete.
	KindDelete Kind = 3
)

// String returns the update-workload name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindReplace:
		return "replace"
	case KindDelete:
		return "delete"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one journaled update: the operation, the document name it
// targets, (for insert/replace) the full serialized document, and — for
// server-side journals — the idempotency key of the client request that
// caused it. The key is what makes retried updates exactly-once across a
// crash: recovery rebuilds the server's dedup table from the keyed
// records, so a replayed retry after restart answers with the original
// result instead of re-applying. Engine-internal journals leave the key
// zero.
type Record struct {
	Kind Kind
	Name string
	Data []byte
	// Client and Seq form the idempotency key (zero when unkeyed).
	Client uint64
	Seq    uint64
}

// Keyed reports whether the record carries an idempotency key.
func (r Record) Keyed() bool { return r.Client != 0 }

// recMagic guards every record; a zeroed or torn page fails the check and
// ends the committed prefix. "UPD2" added the idempotency-key fields.
const recMagic = 0x55504432 // "UPD2"

// record layout:
//
//	magic(4) kind(1) client(8) seq(8) nameLen(4) dataLen(4) name data sum(8)
const recHeaderSize = 4 + 1 + 8 + 8 + 4 + 4

func checksum(r Record) uint64 {
	h := fnv.New64a()
	var key [17]byte
	key[0] = byte(r.Kind)
	binary.BigEndian.PutUint64(key[1:9], r.Client)
	binary.BigEndian.PutUint64(key[9:17], r.Seq)
	h.Write(key[:])
	h.Write([]byte(r.Name))
	h.Write(r.Data)
	return h.Sum64()
}

func encodeRecord(r Record) []byte {
	buf := make([]byte, recHeaderSize+len(r.Name)+len(r.Data)+8)
	binary.BigEndian.PutUint32(buf[0:4], recMagic)
	buf[4] = byte(r.Kind)
	binary.BigEndian.PutUint64(buf[5:13], r.Client)
	binary.BigEndian.PutUint64(buf[13:21], r.Seq)
	binary.BigEndian.PutUint32(buf[21:25], uint32(len(r.Name)))
	binary.BigEndian.PutUint32(buf[25:29], uint32(len(r.Data)))
	n := copy(buf[recHeaderSize:], r.Name)
	copy(buf[recHeaderSize+n:], r.Data)
	binary.BigEndian.PutUint64(buf[len(buf)-8:], checksum(r))
	return buf
}

// decodeRecord reads one record from buf, returning the record, the
// bytes consumed, and whether the record was durably complete. A failed
// decode (bad magic, impossible lengths, truncation, checksum mismatch)
// marks the end of the committed prefix — exactly like a torn WAL tail.
func decodeRecord(buf []byte) (Record, int, bool) {
	if len(buf) < recHeaderSize+8 {
		return Record{}, 0, false
	}
	if binary.BigEndian.Uint32(buf[0:4]) != recMagic {
		return Record{}, 0, false
	}
	r := Record{Kind: Kind(buf[4])}
	if r.Kind < KindInsert || r.Kind > KindDelete {
		return Record{}, 0, false
	}
	r.Client = binary.BigEndian.Uint64(buf[5:13])
	r.Seq = binary.BigEndian.Uint64(buf[13:21])
	nameLen := int(binary.BigEndian.Uint32(buf[21:25]))
	dataLen := int(binary.BigEndian.Uint32(buf[25:29]))
	total := recHeaderSize + nameLen + dataLen + 8
	if nameLen < 0 || dataLen < 0 || total > len(buf) {
		return Record{}, 0, false
	}
	r.Name = string(buf[recHeaderSize : recHeaderSize+nameLen])
	r.Data = append([]byte(nil), buf[recHeaderSize+nameLen:recHeaderSize+nameLen+dataLen]...)
	if len(r.Data) == 0 {
		r.Data = nil
	}
	if binary.BigEndian.Uint64(buf[total-8:total]) != checksum(r) {
		return Record{}, 0, false
	}
	return r, total, true
}

// Log is an append-only journal over one pager file. It is not
// goroutine-safe on its own; engines call it under their write lock.
type Log struct {
	p   *pager.Pager
	fid pager.FileID

	// Volatile write cursor — like a heap tail, this state dies with a
	// crash. Committed deliberately ignores it and reads the disk.
	end     uint64
	tail    []byte
	tailNo  uint32
	hasTail bool
}

// New creates the journal file on p. Call once per engine, at
// construction time.
func New(p *pager.Pager, name string) *Log {
	return &Log{p: p, fid: p.Create(name)}
}

// Append journals one update and syncs the journal file. The sync is the
// commit point: once Append returns nil the update is durably committed
// and recovery will replay it; on error (including a crash mid-append)
// the record is torn or absent and the update never happened.
func (l *Log) Append(r Record) error {
	if err := l.write(encodeRecord(r)); err != nil {
		return fmt.Errorf("updatelog: append: %w", err)
	}
	if err := l.p.Sync(l.fid); err != nil {
		return fmt.Errorf("updatelog: commit sync: %w", err)
	}
	return nil
}

// write lays b down at the end of the journal, page by page. The current
// tail page is kept in memory and rewritten as records accumulate.
func (l *Log) write(b []byte) error {
	for len(b) > 0 {
		off := int(l.end % pager.PageSize)
		if off == 0 || !l.hasTail {
			if _, err := l.p.Append(l.fid); err != nil {
				return err
			}
			l.tail = make([]byte, pager.PageSize)
			l.tailNo = uint32(l.end / pager.PageSize)
			l.hasTail = true
		}
		n := copy(l.tail[off:], b)
		b = b[n:]
		l.end += uint64(n)
		if err := l.p.Write(l.fid, l.tailNo, l.tail); err != nil {
			return err
		}
		if l.end%pager.PageSize == 0 {
			l.hasTail = false
		}
	}
	return nil
}

// Reset truncates the journal (a fresh Load supersedes all prior
// updates). It fails while the pager is crashed, like any truncation.
func (l *Log) Reset() error {
	if err := l.p.Truncate(l.fid); err != nil {
		return err
	}
	l.end = 0
	l.tail = nil
	l.hasTail = false
	return nil
}

// Committed returns the durably committed records, in commit order. It
// reads the journal pages from the (recovered) disk rather than trusting
// the volatile write cursor, stopping at the first torn or invalid
// record — so it is exactly the set replay must re-apply. Call it after
// pager recovery and BEFORE reloading the database (Load resets the
// journal).
func (l *Log) Committed() ([]Record, error) {
	n := l.p.NumPages(l.fid)
	buf := make([]byte, 0, int(n)*pager.PageSize)
	for no := uint32(0); no < n; no++ {
		pg, err := l.p.Read(l.fid, no)
		if err != nil {
			return nil, fmt.Errorf("updatelog: read page %d: %w", no, err)
		}
		buf = append(buf, pg...)
	}
	var recs []Record
	for len(buf) > 0 {
		r, sz, ok := decodeRecord(buf)
		if !ok {
			break
		}
		recs = append(recs, r)
		buf = buf[sz:]
	}
	return recs, nil
}

// Replay restores an engine after a crash: it reads the committed
// updates off l, reloads db (wiping torn physical state and resetting
// the journal), and re-applies each update in commit order through the
// engine's public update methods — which re-journal them, rebuilding the
// log as a side effect. The caller must have run pager recovery first
// and should rebuild value indexes afterwards (Load drops them).
func Replay(ctx context.Context, e core.Engine, l *Log, db *core.Database) error {
	recs, err := l.Committed()
	if err != nil {
		return err
	}
	if _, err := e.Load(ctx, db); err != nil {
		return fmt.Errorf("updatelog: replay reload: %w", err)
	}
	return Apply(ctx, e, recs)
}

// Apply re-applies committed records, in commit order, through an
// engine's public update methods. It is the replay half shared by engine
// recovery (Replay) and the server's restart path, which rebuilds its
// idempotency dedup table from the keyed records as it goes.
func Apply(ctx context.Context, e core.Engine, recs []Record) error {
	for _, r := range recs {
		var err error
		switch r.Kind {
		case KindInsert:
			err = e.InsertDocument(ctx, r.Name, r.Data)
		case KindReplace:
			err = e.ReplaceDocument(ctx, r.Name, r.Data)
		case KindDelete:
			err = e.DeleteDocument(ctx, r.Name)
		}
		if err != nil {
			return fmt.Errorf("updatelog: replay %s %q: %w", r.Kind, r.Name, err)
		}
	}
	return nil
}
