package updatelog

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitSharesSyncs: N concurrent writers must commit with far
// fewer than N fsyncs. The injected sync hook slows each sync down so
// writers pile into the forming batch while the previous batch syncs —
// the natural-batching behavior group commit relies on.
func TestGroupCommitSharesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.syncHook = func(f *os.File) error {
		time.Sleep(2 * time.Millisecond) // a sync takes long enough to form a group
		return f.Sync()
	}

	const writers = 32
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append(Record{
				Kind: KindInsert, Name: fmt.Sprintf("doc-%d.xml", i),
				Data: []byte("<d/>"), Client: 1, Seq: uint64(i + 1),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if got := l.Records(); got != writers {
		t.Fatalf("Records() = %d, want %d", got, writers)
	}
	syncs := l.Syncs()
	if syncs >= writers/2 {
		t.Fatalf("%d writers cost %d syncs; group commit should share them (want < %d)", writers, syncs, writers/2)
	}
	if syncs < 1 {
		t.Fatalf("Syncs() = %d; durability requires at least one", syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged record must be on disk, exactly once.
	l2, recs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != writers {
		t.Fatalf("reopen found %d records, want %d", len(recs), writers)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("seq %d journaled twice", r.Seq)
		}
		seen[r.Seq] = true
	}
}

// TestGroupCommitLegacyModeSyncsPerRecord: SetGroupCommit(false) restores
// the one-fsync-per-Append contract (the perf baseline's "before" cell).
func TestGroupCommitLegacyModeSyncsPerRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetGroupCommit(false)
	const n = 8
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Kind: KindInsert, Name: fmt.Sprintf("d%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Syncs(); got != n {
		t.Fatalf("legacy mode issued %d syncs for %d appends", got, n)
	}
	if got := l.Records(); got != n {
		t.Fatalf("Records() = %d, want %d", got, n)
	}
}

// TestGroupCommitEnqueueOrderIsJournalOrder: records land in the file in
// Enqueue order even when their WaitDurable calls complete out of order.
func TestGroupCommitEnqueueOrderIsJournalOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	batches := make([]*Batch, n)
	for i := 0; i < n; i++ {
		b, err := l.Enqueue(Record{Kind: KindInsert, Name: fmt.Sprintf("d%d", i), Seq: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		batches[i] = b
	}
	for i := n - 1; i >= 0; i-- { // wait in reverse; order must not care
		if err := l.WaitDurable(batches[i]); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != n {
		t.Fatalf("reopen found %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d: journal order diverged from enqueue order", i, r.Seq)
		}
	}
}

// TestGroupCommitCloseFlushesFormingBatch: records enqueued but not yet
// waited on still reach disk when Close drains the flusher.
func TestGroupCommitCloseFlushesFormingBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Enqueue(Record{Kind: KindInsert, Name: "pending.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "pending.xml" {
		t.Fatalf("Close lost the forming batch: %d records", len(recs))
	}
}
