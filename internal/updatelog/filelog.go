// FileLog is the operating-system-file sibling of Log: the same
// checksummed record codec, appended to a real file and fsynced per
// record. The pager-backed Log protects engines against the *simulated*
// crashes of the fault-injection harness; its pages live in process
// memory, so a real process kill (SIGKILL, OOM, power) loses them. The
// serving layer therefore journals acknowledged updates through a FileLog:
// after a process death, server.Reopen reads the committed prefix back,
// re-applies it to a freshly loaded engine, and rebuilds the idempotency
// dedup table from the keyed records — making every acknowledged update
// exactly-once across real restarts, not just simulated ones.
package updatelog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileLog is an append-only, fsync-per-record journal on the real
// filesystem. It is safe for concurrent Append; the caller (the server's
// update path) serializes apply+append so journal order matches apply
// order.
type FileLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	recs int // records appended or recovered, for reporting
}

// OpenFile opens (or creates) the journal at path and prepares it for
// appending. An existing file is scanned for its committed prefix — the
// longest run of intact records — and truncated to it, so a record torn
// by a crash mid-append never leaves garbage in front of later appends.
// The committed records are returned for replay.
func OpenFile(path string) (*FileLog, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("updatelog: open %s: %w", path, err)
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("updatelog: read %s: %w", path, err)
	}
	var recs []Record
	committed := 0
	rest := buf
	for len(rest) > 0 {
		r, sz, ok := decodeRecord(rest)
		if !ok {
			break // torn tail: the record was mid-append at the crash
		}
		recs = append(recs, r)
		committed += sz
		rest = rest[sz:]
	}
	if committed < len(buf) {
		if err := f.Truncate(int64(committed)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("updatelog: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(committed), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("updatelog: seek %s: %w", path, err)
	}
	return &FileLog{f: f, path: path, recs: len(recs)}, recs, nil
}

// Path returns the journal's file path.
func (l *FileLog) Path() string { return l.path }

// Records returns the number of records committed so far (recovered plus
// appended this run).
func (l *FileLog) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Append journals one record and fsyncs. The sync is the commit point:
// once Append returns nil the record survives a process kill and Reopen
// will replay it; on error the record is torn or absent and recovery
// treats the update as never acknowledged.
func (l *FileLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("updatelog: append on closed file log")
	}
	if _, err := l.f.Write(encodeRecord(r)); err != nil {
		return fmt.Errorf("updatelog: append %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("updatelog: commit sync %s: %w", l.path, err)
	}
	l.recs++
	return nil
}

// Close releases the file handle. Committed records stay on disk for the
// next Reopen.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
