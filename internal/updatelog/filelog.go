// FileLog is the operating-system-file sibling of Log: the same
// checksummed record codec, appended to a real file and made durable by
// fsync. The pager-backed Log protects engines against the *simulated*
// crashes of the fault-injection harness; its pages live in process
// memory, so a real process kill (SIGKILL, OOM, power) loses them. The
// serving layer therefore journals acknowledged updates through a FileLog:
// after a process death, server.Reopen reads the committed prefix back,
// re-applies it to a freshly loaded engine, and rebuilds the idempotency
// dedup table from the keyed records — making every acknowledged update
// exactly-once across real restarts, not just simulated ones.
//
// Commits are grouped (DESIGN.md §13): Enqueue serializes a record into
// the forming batch and returns a handle; a single flusher goroutine
// seals the batch, writes it with one syscall and fsyncs it with one
// sync. WaitDurable blocks until that batch's sync returned — records
// enqueued while a sync is in progress pile into the next batch, so
// under W concurrent writers one disk sync commits up to W records. The
// durability contract is unchanged from fsync-per-record: WaitDurable
// returning nil still means the record survives a process kill, because
// no caller is released before its batch's fsync completed.
package updatelog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Batch is a handle to one group-commit unit: every record enqueued into
// it becomes durable (or fails) together, with one write and one sync.
type Batch struct {
	buf  []byte
	n    int           // records in this batch
	done chan struct{} // closed after the batch's write+sync finished
	err  error         // set before done is closed
}

// FileLog is an append-only, group-committed journal on the real
// filesystem. It is safe for concurrent Append/Enqueue; the caller (the
// server's update path) serializes apply+Enqueue so journal order matches
// apply order, then waits for durability outside that critical section.
type FileLog struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	recs     int    // records committed (recovered + flushed this run)
	broken   error  // first write/sync failure; poisons later appends
	cur      *Batch // forming batch, nil when none
	flushing bool   // a flushLoop goroutine is draining batches
	flushWg  sync.WaitGroup
	group    bool          // group commit enabled (default); false = sync per record
	window   time.Duration // optional extra wait before sealing a batch
	syncs    atomic.Int64
	syncHook func(*os.File) error // test seam; nil means (*os.File).Sync
}

// OpenFile opens (or creates) the journal at path and prepares it for
// appending. An existing file is scanned for its committed prefix — the
// longest run of intact records — and truncated to it, so a record torn
// by a crash mid-append never leaves garbage in front of later appends.
// The committed records are returned for replay.
func OpenFile(path string) (*FileLog, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("updatelog: open %s: %w", path, err)
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("updatelog: read %s: %w", path, err)
	}
	var recs []Record
	committed := 0
	rest := buf
	for len(rest) > 0 {
		r, sz, ok := decodeRecord(rest)
		if !ok {
			break // torn tail: the record was mid-append at the crash
		}
		recs = append(recs, r)
		committed += sz
		rest = rest[sz:]
	}
	if committed < len(buf) {
		if err := f.Truncate(int64(committed)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("updatelog: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(committed), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("updatelog: seek %s: %w", path, err)
	}
	return &FileLog{f: f, path: path, recs: len(recs), group: true}, recs, nil
}

// Path returns the journal's file path.
func (l *FileLog) Path() string { return l.path }

// Records returns the number of records committed so far (recovered plus
// appended this run).
func (l *FileLog) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Syncs returns the number of disk syncs issued so far. Under group
// commit and concurrent writers it grows slower than Records() — the
// updates-per-fsync ratio is the whole point.
func (l *FileLog) Syncs() int64 { return l.syncs.Load() }

// SetGroupCommit toggles group commit. Off restores the legacy
// one-write-one-sync-per-record Append (the "before" cell of the perf
// baseline). Only safe to flip while no append is in flight.
func (l *FileLog) SetGroupCommit(on bool) {
	l.mu.Lock()
	l.group = on
	l.mu.Unlock()
}

// SetGroupWindow adds a fixed wait before each batch is sealed, trading
// commit latency for deeper batches. Zero (the default) keeps batching
// purely natural: everything enqueued during the previous sync goes out
// together.
func (l *FileLog) SetGroupWindow(d time.Duration) {
	l.mu.Lock()
	l.window = d
	l.mu.Unlock()
}

func (l *FileLog) doSync(f *os.File) error {
	l.syncs.Add(1)
	if l.syncHook != nil {
		return l.syncHook(f)
	}
	return f.Sync()
}

// Append journals one record and waits for it to be durable. The sync is
// the commit point: once Append returns nil the record survives a
// process kill and Reopen will replay it; on error the record is torn or
// absent and recovery treats the update as never acknowledged.
func (l *FileLog) Append(r Record) error {
	b, err := l.Enqueue(r)
	if err != nil {
		return err
	}
	return l.WaitDurable(b)
}

// Enqueue serializes one record into the forming batch and returns the
// batch handle. The record's position in the journal is fixed here —
// callers that must keep journal order equal to apply order hold their
// ordering lock across Enqueue and may release it before WaitDurable.
// The record is NOT durable until WaitDurable on the returned batch
// succeeds.
func (l *FileLog) Enqueue(r Record) (*Batch, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, errors.New("updatelog: append on closed file log")
	}
	if l.broken != nil {
		// A previous batch failed mid-write; anything appended after it
		// could sit behind a torn record and silently vanish from the
		// committed prefix on recovery. Refuse instead.
		return nil, fmt.Errorf("updatelog: journal poisoned by earlier failure: %w", l.broken)
	}
	if !l.group {
		// Legacy mode: write + sync per record, under the lock.
		b := &Batch{n: 1, done: make(chan struct{})}
		defer close(b.done)
		if _, err := l.f.Write(encodeRecord(r)); err != nil {
			l.broken = err
			b.err = fmt.Errorf("updatelog: append %s: %w", l.path, err)
			return b, nil
		}
		if err := l.doSync(l.f); err != nil {
			l.broken = err
			b.err = fmt.Errorf("updatelog: commit sync %s: %w", l.path, err)
			return b, nil
		}
		l.recs++
		return b, nil
	}
	if l.cur == nil {
		l.cur = &Batch{done: make(chan struct{})}
	}
	l.cur.buf = append(l.cur.buf, encodeRecord(r)...)
	l.cur.n++
	b := l.cur
	if !l.flushing {
		l.flushing = true
		l.flushWg.Add(1)
		go l.flushLoop()
	}
	return b, nil
}

// WaitDurable blocks until b's write+sync finished and returns its
// outcome. Nil means every record in the batch is on disk.
func (l *FileLog) WaitDurable(b *Batch) error {
	<-b.done
	return b.err
}

// flushLoop drains forming batches one at a time: seal, one Write, one
// Sync, release the batch's waiters, repeat until no batch formed while
// the previous one was syncing. It exits when idle — a quiet journal
// costs no goroutine.
func (l *FileLog) flushLoop() {
	defer l.flushWg.Done()
	for {
		if w := l.windowOf(); w > 0 {
			time.Sleep(w)
		}
		l.mu.Lock()
		b := l.cur
		l.cur = nil
		if b == nil {
			l.flushing = false
			l.mu.Unlock()
			return
		}
		f := l.f
		l.mu.Unlock()
		// IO happens outside the lock: records for the NEXT batch keep
		// enqueueing while this one syncs — that overlap is the group.
		var err error
		if f == nil {
			err = errors.New("updatelog: append on closed file log")
		} else if _, werr := f.Write(b.buf); werr != nil {
			err = fmt.Errorf("updatelog: append %s: %w", l.path, werr)
		} else if serr := l.doSync(f); serr != nil {
			err = fmt.Errorf("updatelog: commit sync %s: %w", l.path, serr)
		}
		l.mu.Lock()
		if err == nil {
			l.recs += b.n
		} else if l.broken == nil {
			l.broken = err
		}
		l.mu.Unlock()
		b.err = err
		close(b.done)
	}
}

func (l *FileLog) windowOf() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.window
}

// Close flushes any forming batch, then releases the file handle.
// Committed records stay on disk for the next Reopen.
func (l *FileLog) Close() error {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	// Drain the flusher: it exits only once no batch is forming, so every
	// enqueued-before-Close record gets its write+sync. (Enqueues racing
	// with Close may still land after the drain; they fail their flush
	// against the closed handle, which is an error, not a lost ack.)
	l.flushWg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
