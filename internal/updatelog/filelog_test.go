package updatelog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestFileLogAppendReopen: records (including idempotency keys) survive
// a close/reopen cycle bit-exact, in commit order.
func TestFileLogAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	l, recs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	want := []Record{
		{Kind: KindInsert, Name: "a.xml", Data: []byte("<a/>"), Client: 7, Seq: 1},
		{Kind: KindReplace, Name: "a.xml", Data: []byte("<a rev='1'/>"), Client: 7, Seq: 2},
		{Kind: KindDelete, Name: "a.xml", Client: 9, Seq: 1},
		{Kind: KindInsert, Name: "unkeyed.xml", Data: []byte("<u/>")},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != len(want) {
		t.Fatalf("Records() = %d, want %d", l.Records(), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reopen: got %+v, want %+v", got, want)
	}
	if !got[0].Keyed() || got[3].Keyed() {
		t.Fatal("Keyed() misclassifies records")
	}
}

// TestFileLogTornTailTruncated: a record torn mid-append (a real crash's
// signature) ends the committed prefix, is physically truncated on open,
// and appending afterwards produces a clean journal again.
func TestFileLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindInsert, Name: "keep.xml", Data: []byte("<k/>"), Client: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-append: half a record lands after the commit.
	torn := encodeRecord(Record{Kind: KindInsert, Name: "torn.xml", Data: []byte("<t/>"), Client: 1, Seq: 2})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "keep.xml" {
		t.Fatalf("committed prefix = %+v, want just keep.xml", recs)
	}
	// The torn bytes must be gone: a fresh append then reopen yields
	// exactly two intact records.
	if err := l2.Append(Record{Kind: KindDelete, Name: "keep.xml", Client: 1, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Kind != KindDelete || recs[1].Seq != 3 {
		t.Fatalf("after truncate+append: %+v", recs)
	}
}

// TestFileLogCorruptMiddleEndsPrefix: corruption before the tail ends the
// committed prefix there — recovery never skips over a bad record to
// trust what follows.
func TestFileLogCorruptMiddleEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	l, _, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(Record{Kind: KindInsert, Name: "d.xml", Data: []byte("<d/>"), Client: 2, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	one := len(raw) / 3
	raw[one+10] ^= 0xFF // flip a byte inside the second record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("prefix after mid-corruption = %+v, want only seq 1", recs)
	}
}
