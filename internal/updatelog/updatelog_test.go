package updatelog

import (
	"bytes"
	"strings"
	"testing"

	"xbench/internal/pager"
)

func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{Kind: KindInsert, Name: "a.xml", Data: []byte("<a/>")},
		{Kind: KindReplace, Name: "b.xml", Data: bytes.Repeat([]byte("x"), 3*pager.PageSize)},
		{Kind: KindDelete, Name: "c.xml"},
	}
	for _, want := range recs {
		got, n, ok := decodeRecord(encodeRecord(want))
		if !ok {
			t.Fatalf("%s %q failed to decode", want.Kind, want.Name)
		}
		if n != len(encodeRecord(want)) {
			t.Fatalf("%s %q consumed %d of %d bytes", want.Kind, want.Name, n, len(encodeRecord(want)))
		}
		if got.Kind != want.Kind || got.Name != want.Name || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("roundtrip mismatch: got %+v", got)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := encodeRecord(Record{Kind: KindInsert, Name: "a.xml", Data: []byte("<a/>")})
	cases := map[string][]byte{
		"empty":        nil,
		"zeroed page":  make([]byte, pager.PageSize),
		"bad magic":    append([]byte{0, 0, 0, 0}, good[4:]...),
		"bad kind":     append(append([]byte{}, good[:4]...), append([]byte{9}, good[5:]...)...),
		"truncated":    good[:len(good)-3],
		"bit flip":     append(append([]byte{}, good[:len(good)-1]...), good[len(good)-1]^1),
		"huge dataLen": func() []byte { b := append([]byte{}, good...); b[9], b[10] = 0xFF, 0xFF; return b }(),
	}
	for name, buf := range cases {
		if _, _, ok := decodeRecord(buf); ok {
			t.Errorf("%s decoded as a valid record", name)
		}
	}
}

func TestAppendCommittedReset(t *testing.T) {
	p := pager.New(8)
	l := New(p, "updates")
	want := []Record{
		{Kind: KindInsert, Name: "a.xml", Data: []byte("<a/>")},
		{Kind: KindReplace, Name: "big.xml", Data: bytes.Repeat([]byte("y"), 2*pager.PageSize+17)},
		{Kind: KindDelete, Name: "a.xml"},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.Committed()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Committed returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Name != want[i].Name || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d: got %+v", i, got[i])
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if got, err := l.Committed(); err != nil || len(got) != 0 {
		t.Fatalf("after Reset: %d records, %v", len(got), err)
	}
	// The log must stay appendable after a reset.
	if err := l.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if got, _ := l.Committed(); len(got) != 1 || got[0].Name != "a.xml" {
		t.Fatalf("post-reset append: %+v", got)
	}
}

// TestCrashLeavesCommittedPrefix sweeps a crash across every disk
// operation of a three-record append sequence: after recovery, Committed
// must return a clean prefix — never a torn or reordered suffix.
func TestCrashLeavesCommittedPrefix(t *testing.T) {
	recs := []Record{
		{Kind: KindInsert, Name: "a.xml", Data: bytes.Repeat([]byte("a"), 100)},
		{Kind: KindReplace, Name: "b.xml", Data: bytes.Repeat([]byte("b"), pager.PageSize+50)},
		{Kind: KindDelete, Name: "c.xml"},
	}
	// Budget run: count disk ops for the fault-free sequence.
	probe := pager.New(4)
	probe.SetFaultPolicy(pager.FaultPolicy{Seed: 1})
	pl := New(probe, "updates")
	for _, r := range recs {
		if err := pl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	budget := probe.OpCount()
	if budget == 0 {
		t.Fatal("probe run performed no disk ops")
	}

	for crashAt := int64(1); crashAt <= budget; crashAt++ {
		p := pager.New(4)
		p.SetFaultPolicy(pager.FaultPolicy{Seed: 1, CrashAfterOps: crashAt})
		l := New(p, "updates")
		committed := 0
		var failed error
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				failed = err
				break
			}
			committed++
		}
		if failed != nil && !pager.IsCrash(failed) {
			t.Fatalf("crashAt %d: unexpected error %v", crashAt, failed)
		}
		if _, err := p.Recover(); err != nil {
			t.Fatalf("crashAt %d: recover: %v", crashAt, err)
		}
		if err := p.CheckDurable(); err != nil {
			t.Fatalf("crashAt %d: %v", crashAt, err)
		}
		got, err := l.Committed()
		if err != nil {
			t.Fatalf("crashAt %d: committed: %v", crashAt, err)
		}
		// Every Append that returned nil is durably committed; a crash
		// mid-append may still have committed that record's bytes (the
		// crash can land after the data reached the platter), so the
		// recovered count is committed or committed+1 — never less, and
		// always a prefix in order.
		if len(got) < committed || len(got) > committed+1 {
			t.Fatalf("crashAt %d: %d acknowledged, %d recovered", crashAt, committed, len(got))
		}
		for i, r := range got {
			if r.Kind != recs[i].Kind || r.Name != recs[i].Name || !bytes.Equal(r.Data, recs[i].Data) {
				t.Fatalf("crashAt %d: record %d torn: %+v", crashAt, i, r)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindInsert: "insert", KindReplace: "replace", KindDelete: "delete"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Errorf("unknown kind string %q", Kind(9).String())
	}
}
