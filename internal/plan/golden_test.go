package plan

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/queries"
)

// updatePlans rewrites the golden plan files instead of diffing them:
//
//	go test ./internal/plan -run TestGoldenPlans -update-plans
var updatePlans = flag.Bool("update-plans", false, "rewrite results/plans golden files")

// goldenDir is the checked-in EXPLAIN corpus, one file per (class,
// query) cell, planned over fixture statistics so the output is
// machine-independent. `make plan-check` diffs it in CI.
const goldenDir = "../../results/plans"

func classSlug(c core.Class) string {
	return strings.ToLower(strings.ReplaceAll(c.String(), "/", ""))
}

func goldenText(class core.Class, def *queries.Def, ph *Physical) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s %s\n", class, def.ID)
	if len(ph.Rules) > 0 {
		fmt.Fprintf(&b, "# rules: %s\n", strings.Join(ph.Rules, ", "))
	}
	b.WriteString(ph.Root.Format())
	return b.String()
}

// TestGoldenPlans plans every defined (class, query) cell over fixture
// statistics and diffs the printable tree against results/plans. A diff
// means the planner's output changed: inspect it, then refresh with
// -update-plans if the change is intended.
func TestGoldenPlans(t *testing.T) {
	if *updatePlans {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	cells := 0
	for _, class := range core.Classes {
		st := FixtureStats(class)
		for q := core.Q1; q <= core.Q20; q++ {
			def := queries.Lookup(class, q)
			if def == nil {
				continue
			}
			ph, err := Plan(def, st)
			if err != nil {
				t.Fatalf("%s %s: %v", class, q, err)
			}
			cells++
			got := goldenText(class, def, ph)
			path := filepath.Join(goldenDir, fmt.Sprintf("%s_q%02d.txt", classSlug(class), int(q)))
			if *updatePlans {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("%s %s: missing golden %s (run with -update-plans): %v", class, q, path, err)
				continue
			}
			if got != string(want) {
				t.Errorf("%s %s: plan drifted from %s\n--- got\n%s--- want\n%s",
					class, q, path, got, want)
			}
		}
	}
	// The corpus must cover every cell (the workload defines 59): a
	// planner regression that makes Plan error out would otherwise
	// shrink the diff surface silently.
	if cells < 59 {
		t.Errorf("planned only %d cells, expected the full workload grid", cells)
	}
}
