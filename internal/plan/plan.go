// Package plan is the cost-based query planner. It compiles the parsed
// XQuery shape of a catalog query (via xquery.Analyze) into a logical
// plan, runs a small rewrite pass (predicate pushdown into index
// probes, limit pushdown for positional [1] access, join reordering for
// the shredded engines' reconstructions), and costs the access-path
// alternatives with the engine's page counts to pick index-vs-scan —
// replacing the hard-coded queries.Def.IndexTarget hints, which survive
// only as assertions the planner must reproduce (see TestHintDrift).
//
// All four engines execute through the resulting Physical and expose
// its Root tree via core.Explainer, so access-path regressions are
// diffable golden files instead of silent perf cliffs.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"xbench/internal/core"
	"xbench/internal/queries"
	"xbench/internal/xquery"
)

// Access is the chosen primary access path.
type Access int

const (
	// AccessScan reads the whole collection (heap scan / CLOB scan /
	// table scan) and filters.
	AccessScan Access = iota
	// AccessIndex probes a Table 3 value index, equality or range.
	AccessIndex
	// AccessDoc fetches one named document (doc($X) queries).
	AccessDoc
)

func (a Access) String() string {
	switch a {
	case AccessIndex:
		return "index"
	case AccessDoc:
		return "doc"
	default:
		return "scan"
	}
}

// StatValues feeds the cost model. Engines derive them from live pager
// page counts; tests and goldens use FixtureStats for determinism.
type StatValues struct {
	// DataPages is the page count of the primary data (document heap,
	// CLOB heap, or primary shredded table).
	DataPages int64
	// DataRows is the addressable-unit count (documents, or rows of
	// the primary table).
	DataRows int64
	// Indexes maps available value-index targets (Table 3 notation:
	// "hw", "item/@id", "date_of_release") to their btree height.
	Indexes map[string]int
	// RangeSelectivity holds observed per-target range selectivities
	// fed back from execution (see Feedback). Targets without an entry
	// are costed with DefaultRangeSelectivity.
	RangeSelectivity map[string]float64
}

// FixtureStats returns the canonical statistics used for golden plans
// and drift tests: a collection big enough that every hinted index
// wins, with exactly the class's Table 3 indexes at height 2.
func FixtureStats(class core.Class) StatValues {
	st := StatValues{DataPages: 512, DataRows: 4096, Indexes: map[string]int{}}
	for _, spec := range queries.Indexes(class) {
		st.Indexes[spec.Target] = 2
	}
	return st
}

// Physical is a costed physical plan: the decisions an engine needs to
// execute (access path, probe parameters, pushed-down limit) plus the
// printable tree served through the Explain API.
type Physical struct {
	Def   *queries.Def
	Shape *xquery.Shape
	// Sources is the shape's source list after join reordering: the
	// primary (outer) access comes first. It is a copy — the memoized
	// Shape is shared and never mutated.
	Sources []xquery.Source

	// Access is the costed index-vs-scan choice for the primary source.
	Access Access
	// IndexTarget/IndexParam identify an equality probe: the Table 3
	// index target and the query parameter holding the key.
	IndexTarget string
	IndexParam  string
	// LoParam/HiParam are set instead of IndexParam for range probes.
	LoParam, HiParam string
	// Limit is the pushed-down row cap (positional [k] access), 0 if
	// none.
	Limit int
	// FeedbackTarget is the index target of the primary source's range
	// candidate, set whether or not the probe won the cost race. The
	// execution layer keys observed-selectivity feedback by it, so a
	// probe the model demoted to a scan keeps reporting and can be
	// re-promoted when the data shifts back.
	FeedbackTarget string
	// EstCost and EstRows are the cost model's numbers for the chosen
	// primary access path.
	EstCost float64
	EstRows float64
	// Rules lists the rewrite rules that fired, in order.
	Rules []string

	// Root is the plan tree returned by Explain.
	Root *core.PlanNode
}

// shapeCache memoizes xquery.Analyze per query text: shapes depend only
// on the XQuery source, and Plan runs on every Execute.
var shapeCache sync.Map // string -> *xquery.Shape

func shapeOf(def *queries.Def) *xquery.Shape {
	if v, ok := shapeCache.Load(def.XQuery); ok {
		return v.(*xquery.Shape)
	}
	sh, err := xquery.Analyze(def.XQuery)
	if err != nil {
		// Unparseable queries cannot come from the catalog; degrade to
		// a shape with no facts, which plans as a full scan.
		sh = &xquery.Shape{}
	}
	shapeCache.Store(def.XQuery, sh)
	return sh
}

// Plan builds the costed physical plan for def under st.
func Plan(def *queries.Def, st StatValues) (*Physical, error) {
	if def == nil {
		return nil, core.ErrNoQuery
	}
	sh := shapeOf(def)
	ph := &Physical{Def: def, Shape: sh, Access: AccessScan}
	ph.Sources = append([]xquery.Source(nil), sh.Sources...)
	reorderJoin(ph)

	switch {
	case sh.UsesDoc:
		ph.Access = AccessDoc
		ph.EstCost, ph.EstRows = 1, 1
	case len(ph.Sources) > 0:
		prim := &ph.Sources[0]
		chooseAccess(ph, prim, st)
		if prim.Positional > 0 {
			ph.Limit = prim.Positional
			ph.Rules = append(ph.Rules, fmt.Sprintf("limit-pushdown(n=%d)", prim.Positional))
		}
	default:
		ph.EstCost, ph.EstRows = scanCost(st), float64(st.DataRows)
	}
	ph.Root = buildTree(ph, st)
	return ph, nil
}

// candidate is one indexable predicate set on the primary source.
type candidate struct {
	target string // index target
	height int
	eq     *xquery.Pred // equality probe, or
	lo, hi *xquery.Pred // range probe bounds
}

// chooseAccess runs predicate pushdown and the cost model: it finds the
// indexable predicates on the primary source, costs each probe against
// the sequential scan, and picks the cheapest.
func chooseAccess(ph *Physical, prim *xquery.Source, st StatValues) {
	cands := findCandidates(prim, st)
	best, bestCost := (*candidate)(nil), scanCost(st)
	for i := range cands {
		if cands[i].eq == nil && ph.FeedbackTarget == "" {
			ph.FeedbackTarget = cands[i].target
		}
		if c := probeCost(&cands[i], st); c < bestCost {
			best, bestCost = &cands[i], c
		}
	}
	if best == nil {
		ph.EstCost, ph.EstRows = scanCost(st), float64(st.DataRows)
		return
	}
	ph.Access = AccessIndex
	ph.EstCost, ph.EstRows = bestCost, estRows(best, st)
	ph.IndexTarget = best.target
	if best.eq != nil {
		ph.IndexParam = paramName(best.eq.Param)
	} else {
		ph.LoParam = paramName(best.lo.Param)
		ph.HiParam = paramName(best.hi.Param)
	}
	ph.Rules = append(ph.Rules, "predicate-pushdown("+best.target+")")
}

// findCandidates matches the source's comparison predicates against the
// available index targets. A path matches both bare ("hw",
// "date_of_release") and root-qualified ("article/@id") notation.
func findCandidates(prim *xquery.Source, st StatValues) []candidate {
	matchTarget := func(path string) (string, int, bool) {
		if h, ok := st.Indexes[path]; ok {
			return path, h, true
		}
		q := prim.RootElem + "/" + path
		if h, ok := st.Indexes[q]; ok {
			return q, h, true
		}
		return "", 0, false
	}
	var cands []candidate
	ranges := map[string]*candidate{}
	for i := range prim.Preds {
		pr := &prim.Preds[i]
		if !plainParam(pr.Param) {
			continue
		}
		target, h, ok := matchTarget(pr.Path)
		if !ok {
			continue
		}
		switch pr.Op {
		case "=":
			cands = append(cands, candidate{target: target, height: h, eq: pr})
		case ">=", ">":
			c := ranges[target]
			if c == nil {
				c = &candidate{target: target, height: h}
				ranges[target] = c
			}
			c.lo = pr
		case "<=", "<":
			c := ranges[target]
			if c == nil {
				c = &candidate{target: target, height: h}
				ranges[target] = c
			}
			c.hi = pr
		}
	}
	targets := make([]string, 0, len(ranges))
	for t := range ranges {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		if c := ranges[t]; c.lo != nil && c.hi != nil {
			cands = append(cands, *c)
		}
	}
	return cands
}

// plainParam reports whether a predicate's right side is a bare query
// parameter ("$X") rather than a join reference ("$o/customer_id") or a
// literal: only bare parameters are probe keys.
func plainParam(p string) bool {
	return strings.HasPrefix(p, "$") && !strings.Contains(p, "/")
}

func paramName(p string) string { return strings.TrimPrefix(p, "$") }

// DefaultRangeSelectivity is the assumed fraction of rows a range
// predicate keeps when execution has not yet observed the real
// fraction. The benchmark's date ranges select narrow windows; 0.25 is
// deliberately pessimistic so range probes only win against real
// scans. It is a prior, not a constant: engines feed observed
// selectivities back through Feedback into
// StatValues.RangeSelectivity, and rangeSel prefers those.
const DefaultRangeSelectivity = 0.25

// rangeSel is the selectivity used to cost a range probe on target:
// the observed estimate when execution has fed one back, the
// pessimistic default prior otherwise.
func (st StatValues) rangeSel(target string) float64 {
	if s, ok := st.RangeSelectivity[target]; ok {
		return s
	}
	return DefaultRangeSelectivity
}

// scanCost is the page count of a sequential scan.
func scanCost(st StatValues) float64 {
	if st.DataPages < 1 {
		return 1
	}
	return float64(st.DataPages)
}

// probeCost models an index probe: descend the btree (height pages),
// then fetch the estimated matches. Equality on a value index is
// unique-ish (1 row); ranges keep the target's selectivity of the
// rows, each costing its share of the heap pages.
func probeCost(c *candidate, st StatValues) float64 {
	h := float64(c.height)
	if h < 1 {
		h = 1
	}
	if c.eq != nil {
		return h + 1
	}
	return h + st.rangeSel(c.target)*scanCost(st)
}

func estRows(c *candidate, st StatValues) float64 {
	if c.eq != nil {
		return 1
	}
	r := st.rangeSel(c.target) * float64(st.DataRows)
	if r < 1 {
		r = 1
	}
	return r
}

// reorderJoin handles multi-source FLWOR joins (Q19's order x customer
// reconstruction): the source probeable by a bare parameter becomes the
// outer side, the join-correlated source the inner. Sources bound to
// variables are reorderable; correlated subqueries are not.
func reorderJoin(ph *Physical) {
	srcs := ph.Sources
	if len(srcs) != 2 || srcs[0].Var == "" || srcs[1].Var == "" {
		return
	}
	if !hasPlainEq(&srcs[0]) && hasPlainEq(&srcs[1]) {
		srcs[0], srcs[1] = srcs[1], srcs[0]
	}
	ph.Rules = append(ph.Rules, "join-reorder(outer="+srcs[0].RootElem+")")
}

func hasPlainEq(s *xquery.Source) bool {
	for _, pr := range s.Preds {
		if pr.Op == "=" && plainParam(pr.Param) {
			return true
		}
	}
	return false
}
