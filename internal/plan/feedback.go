package plan

import "sync"

// Feedback accumulates observed range-probe selectivities per index
// target, closing the loop between execution and the cost model.
// DefaultRangeSelectivity is only a prior; a workload whose date
// windows keep far more (or fewer) rows than 25% should have its range
// probes re-costed with the fraction they actually keep. Engines call
// Observe after running a planned range access with the row counts it
// saw, and feed Selectivity into StatValues.RangeSelectivity on the
// next Plan call.
//
// The estimate is an exponentially weighted moving average (alpha
// 0.5): U1 inserts grow the primary table and U2 deletes shrink it, so
// the data distribution drifts during a mixed run and old observations
// must decay instead of pinning the estimate at the first window seen.
//
// Safe for concurrent use; a nil *Feedback ignores Observe and reports
// nothing, so cold paths need no guards.
type Feedback struct {
	mu  sync.Mutex
	sel map[string]float64
	n   map[string]int64
}

// Observe records that a range access on target kept rows of total.
// Observations without a target or against an empty table say nothing
// about selectivity and are dropped.
func (f *Feedback) Observe(target string, rows, total int64) {
	if f == nil || target == "" || total <= 0 {
		return
	}
	obs := float64(rows) / float64(total)
	if obs < 0 {
		obs = 0
	} else if obs > 1 {
		obs = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sel == nil {
		f.sel = map[string]float64{}
		f.n = map[string]int64{}
	}
	if cur, ok := f.sel[target]; ok {
		f.sel[target] = 0.5*cur + 0.5*obs
	} else {
		f.sel[target] = obs
	}
	f.n[target]++
}

// Selectivity returns a copy of the current per-target estimates,
// shaped for StatValues.RangeSelectivity. Nil when nothing has been
// observed, so a fresh store plans on the default prior.
func (f *Feedback) Selectivity() map[string]float64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.sel) == 0 {
		return nil
	}
	out := make(map[string]float64, len(f.sel))
	for k, v := range f.sel {
		out[k] = v
	}
	return out
}

// Observations reports how many times target has been observed.
func (f *Feedback) Observations(target string) int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n[target]
}
