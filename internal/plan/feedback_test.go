package plan

import (
	"testing"

	"xbench/internal/core"
	"xbench/internal/queries"
)

func TestFeedbackEWMA(t *testing.T) {
	var f Feedback
	if f.Selectivity() != nil {
		t.Fatal("fresh feedback reported estimates")
	}
	f.Observe("d", 1024, 4096) // 0.25
	f.Observe("d", 4096, 4096) // EWMA -> 0.625
	got := f.Selectivity()["d"]
	if got < 0.62 || got > 0.63 {
		t.Fatalf("EWMA after 0.25, 1.0 = %v, want 0.625", got)
	}
	if n := f.Observations("d"); n != 2 {
		t.Fatalf("Observations = %d, want 2", n)
	}
	// Targetless and empty-table observations carry no information.
	f.Observe("", 1, 1)
	f.Observe("d", 1, 0)
	if n := f.Observations("d"); n != 2 {
		t.Fatalf("zero-total observation counted: %d", n)
	}
	// Out-of-range counts clamp instead of poisoning the estimate.
	f.Observe("c", 10, 4)
	if got := f.Selectivity()["c"]; got != 1 {
		t.Fatalf("rows > total gave selectivity %v, want clamp to 1", got)
	}
	// The returned map is a copy.
	m := f.Selectivity()
	m["d"] = 0
	if f.Selectivity()["d"] == 0 {
		t.Fatal("caller mutation leaked into the feedback state")
	}
}

func TestFeedbackNilReceiver(t *testing.T) {
	var f *Feedback
	f.Observe("d", 1, 2) // must not panic
	if f.Selectivity() != nil || f.Observations("d") != 0 {
		t.Fatal("nil feedback reported state")
	}
}

// TestObservedSelectivityCostFlip: the cost model must trust an
// observed range selectivity over the DefaultRangeSelectivity prior.
// The same query over the same table flips from index probe to scan
// when execution has seen the range keep nearly every row, and back to
// a much cheaper probe when it keeps almost none.
func TestObservedSelectivityCostFlip(t *testing.T) {
	def := queries.Lookup(core.DCSD, core.Q10)
	if def == nil {
		t.Fatal("no DCSD Q10")
	}
	base := StatValues{DataPages: 512, DataRows: 4096,
		Indexes: map[string]int{"date_of_release": 2}}
	ph, err := Plan(def, base)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != AccessIndex {
		t.Fatalf("default prior: got %v, want index probe", ph.Access)
	}
	if ph.FeedbackTarget != "date_of_release" {
		t.Fatalf("FeedbackTarget = %q, want date_of_release", ph.FeedbackTarget)
	}
	priorCost := ph.EstCost

	wide := base
	wide.RangeSelectivity = map[string]float64{"date_of_release": 0.999}
	ph, err = Plan(def, wide)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != AccessScan {
		t.Fatalf("observed selectivity 0.999: got %v, want scan (probe fetches the whole heap anyway)", ph.Access)
	}
	// The demoted probe must keep its feedback key so execution can
	// still report and re-promote it.
	if ph.FeedbackTarget != "date_of_release" {
		t.Fatalf("scan plan lost FeedbackTarget: %q", ph.FeedbackTarget)
	}

	narrow := base
	narrow.RangeSelectivity = map[string]float64{"date_of_release": 0.01}
	ph, err = Plan(def, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != AccessIndex {
		t.Fatalf("observed selectivity 0.01: got %v, want index probe", ph.Access)
	}
	if ph.EstCost >= priorCost {
		t.Fatalf("narrow observation did not cut the probe cost: %v >= %v", ph.EstCost, priorCost)
	}
	wantRows := 0.01 * float64(base.DataRows)
	if ph.EstRows != wantRows {
		t.Fatalf("EstRows = %v, want %v", ph.EstRows, wantRows)
	}
}
