package plan

import (
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/queries"
)

// TestCostFlip: the index-vs-scan choice must follow the cost model, not
// the Def hints. On a tiny table the sequential scan undercuts the probe
// (scanCost = DataPages < height+1); on a big one the index wins.
func TestCostFlip(t *testing.T) {
	def := queries.Lookup(core.DCMD, core.Q1)
	if def == nil {
		t.Fatal("no DCMD Q1")
	}
	small := StatValues{DataPages: 2, DataRows: 16, Indexes: map[string]int{"order/@id": 2}}
	ph, err := Plan(def, small)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != AccessScan {
		t.Fatalf("2-page table: got %v, want scan (plan:\n%s)", ph.Access, ph.Root.Format())
	}
	big := StatValues{DataPages: 512, DataRows: 4096, Indexes: map[string]int{"order/@id": 2}}
	ph, err = Plan(def, big)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != AccessIndex || ph.IndexTarget != "order/@id" {
		t.Fatalf("512-page table: got %v/%q, want index on order/@id (plan:\n%s)",
			ph.Access, ph.IndexTarget, ph.Root.Format())
	}
	if ph.EstCost >= float64(big.DataPages) {
		t.Errorf("index cost %.1f not cheaper than the %d-page scan", ph.EstCost, big.DataPages)
	}
}

// TestLimitPushdown: DCSD Q5's positional predicate ([1]) must surface as
// Limit 1 with a limit node atop the probe.
func TestLimitPushdown(t *testing.T) {
	def := queries.Lookup(core.DCSD, core.Q5)
	ph, err := Plan(def, FixtureStats(core.DCSD))
	if err != nil {
		t.Fatal(err)
	}
	if ph.Limit != 1 {
		t.Fatalf("Limit = %d, want 1", ph.Limit)
	}
	out := ph.Root.Format()
	for _, want := range []string{"limit 1 [limit-pushdown]", "index-probe item/@id"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
	if !hasRule(ph, "limit-pushdown(n=1)") {
		t.Errorf("rules = %v, want limit-pushdown(n=1)", ph.Rules)
	}
}

// TestRangePushdown: DCSD Q10 has no Def hint at all, yet the planner
// must push its date range into an index probe.
func TestRangePushdown(t *testing.T) {
	def := queries.Lookup(core.DCSD, core.Q10)
	if def.IndexTarget != "" {
		t.Fatal("test premise broken: Q10 grew a hint")
	}
	ph, err := Plan(def, FixtureStats(core.DCSD))
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != AccessIndex || ph.IndexTarget != "date_of_release" {
		t.Fatalf("got %v/%q, want range probe on date_of_release", ph.Access, ph.IndexTarget)
	}
	if ph.LoParam != "LO" || ph.HiParam != "HI" {
		t.Fatalf("range params = %q..%q, want LO..HI", ph.LoParam, ph.HiParam)
	}
}

// TestJoinReorder: DCMD Q19 joins order with customer; the side with the
// equality probe must become the outer.
func TestJoinReorder(t *testing.T) {
	def := queries.Lookup(core.DCMD, core.Q19)
	ph, err := Plan(def, FixtureStats(core.DCMD))
	if err != nil {
		t.Fatal(err)
	}
	if !hasRule(ph, "join-reorder(outer=order)") {
		t.Fatalf("rules = %v, want join-reorder(outer=order)", ph.Rules)
	}
	if out := ph.Root.Format(); !strings.Contains(out, "join order x customer") {
		t.Errorf("plan missing join node:\n%s", out)
	}
}

// TestHintDrift: the deprecated Def hints survive as assertions — under
// fixture statistics (big table, all Table 3 indexes built) the planner
// must reproduce every hinted access path exactly.
func TestHintDrift(t *testing.T) {
	for _, class := range core.Classes {
		st := FixtureStats(class)
		for q := core.Q1; q <= core.Q20; q++ {
			def := queries.Lookup(class, q)
			if def == nil || def.IndexTarget == "" {
				continue
			}
			ph, err := Plan(def, st)
			if err != nil {
				t.Fatalf("%s %s: %v", class, q, err)
			}
			if ph.Access != AccessIndex {
				t.Errorf("%s %s: hint %q not reproduced: access %v",
					class, q, def.IndexTarget, ph.Access)
				continue
			}
			if ph.IndexTarget != def.IndexTarget || ph.IndexParam != def.IndexParam {
				t.Errorf("%s %s: planner chose %s/$%s, hint says %s/$%s",
					class, q, ph.IndexTarget, ph.IndexParam, def.IndexTarget, def.IndexParam)
			}
		}
	}
}

// TestPlanPure: planning twice (and with perturbed stats in between)
// yields identical plans — the memoized query shape must never be
// mutated by a planning pass.
func TestPlanPure(t *testing.T) {
	def := queries.Lookup(core.DCMD, core.Q19)
	first, err := Plan(def, FixtureStats(core.DCMD))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(def, StatValues{DataPages: 1, DataRows: 1, Indexes: nil}); err != nil {
		t.Fatal(err)
	}
	again, err := Plan(def, FixtureStats(core.DCMD))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := first.Root.Format(), again.Root.Format(); a != b {
		t.Fatalf("replanning drifted:\n--- first\n%s\n--- again\n%s", a, b)
	}
}

func hasRule(ph *Physical, rule string) bool {
	for _, r := range ph.Rules {
		if r == rule {
			return true
		}
	}
	return false
}
