package plan

import (
	"fmt"
	"strconv"
	"strings"

	"xbench/internal/core"
	"xbench/internal/xquery"
)

// buildTree renders the Physical as the printable operator tree served
// through the Explain API. The vocabulary is stable — golden files
// under results/plans/ diff the Format() output.
func buildTree(ph *Physical, st StatValues) *core.PlanNode {
	sh := ph.Shape
	var prim *xquery.Source
	if len(ph.Sources) > 0 {
		prim = &ph.Sources[0]
	}

	node := accessNode(ph, prim)
	if f := filterNode(ph, prim); f != nil {
		f.Children = []*core.PlanNode{node}
		node = f
	}
	if j := joinNode(ph, st, node); j != nil {
		node = j
	}
	if ph.Limit > 0 {
		node = &core.PlanNode{
			Op:       "limit",
			Target:   strconv.Itoa(ph.Limit),
			Detail:   "limit-pushdown",
			Children: []*core.PlanNode{node},
		}
	}
	if sh.OrderBy {
		node = &core.PlanNode{Op: "sort", Detail: "order by", Children: []*core.PlanNode{node}}
	}
	if sh.Aggregate != "" && !sh.Constructs {
		node = &core.PlanNode{Op: "aggregate", Target: sh.Aggregate, Children: []*core.PlanNode{node}}
	}
	if sh.Constructs {
		node = &core.PlanNode{Op: "construct", Children: []*core.PlanNode{node}}
	}
	return node
}

// accessNode renders the chosen primary access path.
func accessNode(ph *Physical, prim *xquery.Source) *core.PlanNode {
	switch ph.Access {
	case AccessDoc:
		return &core.PlanNode{
			Op:       "doc-lookup",
			Target:   "$" + docParam(ph),
			EstPages: ph.EstCost,
			EstRows:  ph.EstRows,
		}
	case AccessIndex:
		return &core.PlanNode{
			Op:       "index-probe",
			Target:   ph.IndexTarget,
			Detail:   probeDetail(ph, prim),
			EstPages: ph.EstCost,
			EstRows:  ph.EstRows,
		}
	default:
		target := "collection"
		if prim != nil && prim.RootElem != "" {
			target = prim.RootElem
		}
		return &core.PlanNode{
			Op:       "scan",
			Target:   target,
			Detail:   "sequential",
			EstPages: ph.EstCost,
			EstRows:  ph.EstRows,
		}
	}
}

// docParam names the parameter holding the document name.
func docParam(ph *Physical) string {
	for _, p := range ph.Def.Params {
		if p == "DOC" {
			return p
		}
	}
	if len(ph.Def.Params) > 0 {
		return ph.Def.Params[0]
	}
	return "DOC"
}

// probeDetail renders the predicate(s) pushed into the index probe.
func probeDetail(ph *Physical, prim *xquery.Source) string {
	if prim == nil {
		return ""
	}
	if ph.IndexParam != "" {
		for _, pr := range prim.Preds {
			if pushedPred(ph, prim, &pr) && pr.Op == "=" {
				return pr.Path + " = " + pr.Param
			}
		}
		return "= $" + ph.IndexParam
	}
	var path string
	for _, pr := range prim.Preds {
		if pushedPred(ph, prim, &pr) {
			path = pr.Path
			break
		}
	}
	return fmt.Sprintf("%s in [$%s..$%s]", path, ph.LoParam, ph.HiParam)
}

// pushedPred reports whether pr is absorbed by the index probe.
func pushedPred(ph *Physical, prim *xquery.Source, pr *xquery.Pred) bool {
	if ph.Access != AccessIndex {
		return false
	}
	if pr.Path != ph.IndexTarget && prim.RootElem+"/"+pr.Path != ph.IndexTarget {
		return false
	}
	switch pr.Op {
	case "=":
		return paramName(pr.Param) == ph.IndexParam
	case ">=", ">":
		return paramName(pr.Param) == ph.LoParam
	case "<=", "<":
		return paramName(pr.Param) == ph.HiParam
	}
	return false
}

// filterNode renders the residual predicates re-evaluated above the
// access path, nil when everything was pushed down.
func filterNode(ph *Physical, prim *xquery.Source) *core.PlanNode {
	if prim == nil {
		return nil
	}
	var parts []string
	for i := range prim.Preds {
		pr := &prim.Preds[i]
		if pushedPred(ph, prim, pr) || strings.Contains(pr.Param, "/") {
			continue
		}
		parts = append(parts, pr.Path+" "+pr.Op+" "+pr.Param)
	}
	if ph.Shape.Quantified {
		parts = append(parts, "quantified")
	}
	if ph.Shape.TextSearch {
		parts = append(parts, "text-search")
	}
	if len(parts) == 0 && prim.Residual > 0 {
		parts = append(parts, "residual")
	}
	if len(parts) == 0 {
		return nil
	}
	return &core.PlanNode{Op: "filter", Detail: strings.Join(parts, " and ")}
}

// joinNode wraps the outer access with the inner side of a two-source
// FLWOR join (Q19): index nested loop when the inner's join key is
// indexed, plain nested loop otherwise.
func joinNode(ph *Physical, st StatValues, outer *core.PlanNode) *core.PlanNode {
	if len(ph.Sources) != 2 || ph.Sources[0].Var == "" || ph.Sources[1].Var == "" {
		return nil
	}
	inner := &ph.Sources[1]
	var joinPred *xquery.Pred
	for i := range inner.Preds {
		if strings.Contains(inner.Preds[i].Param, "/") {
			joinPred = &inner.Preds[i]
			break
		}
	}
	innerNode := &core.PlanNode{Op: "scan", Target: inner.RootElem, Detail: "sequential"}
	strategy := "nested-loop"
	if joinPred != nil {
		target := ""
		if _, ok := st.Indexes[joinPred.Path]; ok {
			target = joinPred.Path
		} else if _, ok := st.Indexes[inner.RootElem+"/"+joinPred.Path]; ok {
			target = inner.RootElem + "/" + joinPred.Path
		}
		if target != "" {
			innerNode = &core.PlanNode{
				Op:     "index-probe",
				Target: target,
				Detail: joinPred.Path + " = " + joinPred.Param,
			}
			strategy = "index-nested-loop"
		} else {
			innerNode.Detail = joinPred.Path + " = " + joinPred.Param
		}
	}
	return &core.PlanNode{
		Op:       "join",
		Target:   ph.Sources[0].RootElem + " x " + inner.RootElem,
		Detail:   strategy,
		Children: []*core.PlanNode{outer, innerNode},
	}
}
