// Package wire defines the binary client/server protocol of the network
// serving layer: a length-prefixed, checksummed frame format over TCP and
// the payload encodings for every remote engine operation. The protocol
// is deliberately tiny — no reflection, no schema negotiation — so a
// request costs one buffered write and one frame read on each side, and
// the benchmark's wire latency measures the engine plus the network, not
// the serialization stack.
//
// Frame layout (all integers big-endian):
//
//	offset size field
//	0      2    magic 0x5842 ("XB")
//	2      1    protocol version (currently 2; readers accept 1 and 2)
//	3      1    request: op kind / response: status code
//	4      8    request id (echoed verbatim in the response)
//	12     4    payload length
//	16     4    CRC32 (IEEE) of the payload
//	20     n    payload
//
// A torn frame (connection cut mid-frame) surfaces as
// io.ErrUnexpectedEOF; a corrupted frame fails the CRC with ErrChecksum.
// Both are terminal for the connection: framing state cannot be resynced.
//
// Error responses carry a one-byte status in the header and the message
// text as payload; DecodeError maps status codes back onto the typed
// sentinel errors (ErrOverloaded, core.ErrUnsupported, core.ErrNoQuery,
// context.DeadlineExceeded, ...) so remote callers can errors.Is exactly
// as in-process callers do.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"xbench/internal/core"
)

// Magic is the two-byte frame preamble ("XB").
const Magic uint16 = 0x5842

// Version is the protocol version this package writes. Version 2 added
// the optional idempotency-key tail to update payloads; the frame layout
// itself is unchanged, so readers accept every version from MinVersion to
// Version and the payload codecs treat the key as a self-delimiting
// optional suffix — old frames still decode (with a zero key), and old
// readers never see a version they do not speak from this package.
const Version byte = 2

// MinVersion is the oldest protocol version a reader accepts. Version 1
// frames differ only in lacking the idempotency-key tail on updates.
const MinVersion byte = 1

// MaxPayload bounds a frame payload (64 MiB). A length field above it
// fails with ErrTooLarge before any allocation, so a corrupt or hostile
// length prefix cannot balloon memory.
const MaxPayload = 64 << 20

// headerSize is the fixed frame header length in bytes.
const headerSize = 20

// Op identifies a request operation. The set mirrors core.Engine: every
// remote call is one op, so the client can satisfy the interface with one
// round trip per method.
type Op byte

const (
	// OpPing checks liveness; the response payload is the engine name.
	OpPing Op = iota + 1
	// OpQuery executes one workload query (payload: QueryRequest).
	OpQuery
	// OpLoad bulk-loads a database (payload: Database; response LoadStats).
	OpLoad
	// OpIndexes builds the Table 3 indexes (payload: IndexSpecs).
	OpIndexes
	// OpColdReset drops the engine's caches.
	OpColdReset
	// OpPageIO reads the engine's cumulative page I/O counter.
	OpPageIO
	// OpSupports asks whether the engine hosts a class/size combination.
	OpSupports
	// OpInsert is update workload U1 (payload: UpdateRequest).
	OpInsert
	// OpReplace is update workload U2 (payload: UpdateRequest).
	OpReplace
	// OpDelete is update workload U3 (payload: UpdateRequest, empty data).
	OpDelete
	// OpExplain returns the costed physical plan for one workload query
	// without executing it (payload: QueryRequest; response PlanNode).
	// Servers predating this op answer StatusBadRequest, which the client
	// maps back to core.ErrNoExplain.
	OpExplain
	// OpJournal pulls a window of committed update-journal records
	// (payload: JournalPullRequest; response JournalPullResponse). It is
	// how read replicas ship the primary's durable journal: poll, apply,
	// advance. Servers without a journal — and servers predating the op —
	// answer StatusBadRequest.
	OpJournal
)

// String returns the metric-friendly lowercase op name.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpQuery:
		return "query"
	case OpLoad:
		return "load"
	case OpIndexes:
		return "indexes"
	case OpColdReset:
		return "coldreset"
	case OpPageIO:
		return "pageio"
	case OpSupports:
		return "supports"
	case OpInsert:
		return "u1"
	case OpReplace:
		return "u2"
	case OpDelete:
		return "u3"
	case OpExplain:
		return "explain"
	case OpJournal:
		return "journal"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Status is the one-byte response disposition.
type Status byte

const (
	// StatusOK carries the operation's result payload.
	StatusOK Status = iota
	// StatusOverloaded: the admission controller rejected the request
	// (queue full or queue-wait deadline expired).
	StatusOverloaded
	// StatusUnsupported maps core.ErrUnsupported.
	StatusUnsupported
	// StatusNoQuery maps core.ErrNoQuery.
	StatusNoQuery
	// StatusReadOnly maps core.ErrReadOnly.
	StatusReadOnly
	// StatusCanceled maps context.Canceled.
	StatusCanceled
	// StatusDeadline maps context.DeadlineExceeded (per-request timeout).
	StatusDeadline
	// StatusShutdown: the server is draining and accepts no new work.
	StatusShutdown
	// StatusBadRequest: the frame or payload could not be decoded.
	StatusBadRequest
	// StatusInternal carries any other engine error as text.
	StatusInternal
	// StatusNoExplain maps core.ErrNoExplain (the engine executes queries
	// but cannot describe their plans).
	StatusNoExplain
)

// Typed protocol errors. ErrOverloaded and ErrShutdown are the two
// admission-control rejections a well-behaved client must expect under
// load; the rest are framing violations that poison the connection.
var (
	// ErrOverloaded is returned to callers the admission controller turned
	// away. It is load shedding, not failure: the request was never started.
	ErrOverloaded = errors.New("wire: server overloaded")
	// ErrShutdown is returned for requests arriving while the server drains.
	ErrShutdown = errors.New("wire: server shutting down")
	// ErrChecksum marks a frame whose payload failed CRC verification.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrBadMagic marks a frame that does not start with the XB preamble.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrBadVersion marks a frame with an unknown protocol version.
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrTooLarge marks a frame whose declared payload exceeds MaxPayload.
	ErrTooLarge = errors.New("wire: frame payload too large")
	// ErrBadRequest is the typed form of a StatusBadRequest response: the
	// server could not decode the frame or payload. Old servers also answer
	// it for ops they predate, so the client probes feature support with
	// errors.Is(err, ErrBadRequest).
	ErrBadRequest = errors.New("wire: bad request")
)

// Frame is one protocol message. Kind holds the Op on requests and the
// Status on responses; ID ties a response to its request.
type Frame struct {
	Kind    byte
	ID      uint64
	Payload []byte
}

// AppendFrame appends one encoded frame (header, CRC, payload) to dst and
// returns the extended slice. It is WriteFrame without the write: batching
// callers encode several frames into one pooled buffer and flush them with
// a single Write, amortizing the syscall and keeping the CRC pass inside
// the same buffer walk.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, ErrTooLarge
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = f.Kind
	binary.BigEndian.PutUint64(hdr[4:12], f.ID)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(f.Payload))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	return dst, nil
}

// WriteFrame writes one frame to w as a single buffered write. The
// scratch buffer is pooled, so a frame write allocates nothing once the
// pool is warm.
func WriteFrame(w io.Writer, f Frame) error {
	bp := GetBuf()
	buf, err := AppendFrame(*bp, f)
	*bp = buf[:0]
	if err != nil {
		PutBuf(bp)
		return err
	}
	_, err = w.Write(buf)
	PutBuf(bp)
	return err
}

// ReadFrame reads and verifies one frame. A connection cut mid-frame
// returns io.ErrUnexpectedEOF (io.EOF only on a clean boundary); a
// payload failing its CRC returns ErrChecksum.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[2] < MinVersion || hdr[2] > Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d..%d", ErrBadVersion, hdr[2], MinVersion, Version)
	}
	f := Frame{Kind: hdr[3], ID: binary.BigEndian.Uint64(hdr[4:12])}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxPayload {
		return Frame{}, ErrTooLarge
	}
	sum := binary.BigEndian.Uint32(hdr[16:20])
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	if crc32.ChecksumIEEE(f.Payload) != sum {
		return Frame{}, ErrChecksum
	}
	return f, nil
}

// StatusFor maps an engine/handler error to the response status carrying
// it over the wire. Order matters: context errors are checked before the
// engine sentinels because a timed-out engine call usually wraps both.
func StatusFor(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, ErrShutdown):
		return StatusShutdown
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline
	case errors.Is(err, context.Canceled):
		return StatusCanceled
	case errors.Is(err, core.ErrUnsupported):
		return StatusUnsupported
	case errors.Is(err, core.ErrNoQuery):
		return StatusNoQuery
	case errors.Is(err, core.ErrReadOnly):
		return StatusReadOnly
	case errors.Is(err, core.ErrNoExplain):
		return StatusNoExplain
	default:
		return StatusInternal
	}
}

// DecodeError reconstructs the typed error a non-OK response carries: the
// message text from the payload wrapping the sentinel the status maps to,
// so errors.Is works identically on both sides of the wire.
func DecodeError(s Status, payload []byte) error {
	msg := string(payload)
	wrap := func(sentinel error) error {
		if msg == "" {
			return sentinel
		}
		return fmt.Errorf("%s: %w", msg, sentinel)
	}
	switch s {
	case StatusOK:
		return nil
	case StatusOverloaded:
		return wrap(ErrOverloaded)
	case StatusShutdown:
		return wrap(ErrShutdown)
	case StatusUnsupported:
		return wrap(core.ErrUnsupported)
	case StatusNoQuery:
		return wrap(core.ErrNoQuery)
	case StatusReadOnly:
		return wrap(core.ErrReadOnly)
	case StatusCanceled:
		return wrap(context.Canceled)
	case StatusDeadline:
		return wrap(context.DeadlineExceeded)
	case StatusNoExplain:
		return wrap(core.ErrNoExplain)
	case StatusBadRequest:
		return wrap(ErrBadRequest)
	default:
		if msg == "" {
			msg = fmt.Sprintf("status %d", byte(s))
		}
		return fmt.Errorf("wire: remote: %s", msg)
	}
}
