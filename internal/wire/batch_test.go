package wire

import (
	"bytes"
	"testing"
	"time"

	"xbench/internal/core"
)

// TestAppendFrameBatchRoundTrip: several frames encoded into one buffer
// must read back one at a time, byte-identical to per-frame writes.
func TestAppendFrameBatchRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: byte(OpPing), ID: 1},
		{Kind: byte(OpQuery), ID: 2, Payload: []byte("payload two")},
		{Kind: byte(StatusOK), ID: 3, Payload: bytes.Repeat([]byte("x"), 4096)},
	}
	var batch []byte
	var err error
	for _, f := range frames {
		if batch, err = AppendFrame(batch, f); err != nil {
			t.Fatal(err)
		}
	}
	// The batch must be exactly the concatenation of individual writes.
	var individual bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&individual, f); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(batch, individual.Bytes()) {
		t.Fatal("batched encoding differs from per-frame writes")
	}
	r := bytes.NewReader(batch)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("trailing garbage after batch")
	}
}

// TestAppendFrameTooLarge: an oversized payload must fail without
// corrupting the destination buffer.
func TestAppendFrameTooLarge(t *testing.T) {
	dst := []byte("prefix")
	out, err := AppendFrame(dst, Frame{Payload: make([]byte, MaxPayload+1)})
	if err == nil {
		t.Fatal("oversized frame encoded")
	}
	if string(out) != "prefix" {
		t.Fatal("failed append mutated dst")
	}
}

// TestAppendEncodersMatchEncode: the append-style payload encoders must
// produce exactly the bytes of their allocating counterparts, including
// when appending after existing content.
func TestAppendEncodersMatchEncode(t *testing.T) {
	qr := QueryRequest{
		Query:   7,
		Params:  core.Params{"b": "2", "a": "1"},
		Timeout: 250 * time.Millisecond,
	}
	if got := AppendQueryRequest([]byte("pfx"), qr); !bytes.Equal(got[3:], EncodeQueryRequest(qr)) {
		t.Fatal("AppendQueryRequest diverges from EncodeQueryRequest")
	}
	ur := UpdateRequest{
		Name:    "doc-17",
		Data:    []byte("<item/>"),
		Timeout: time.Second,
		Key:     IdemKey{Client: 42, Seq: 9},
	}
	if got := AppendUpdateRequest([]byte("pfx"), ur); !bytes.Equal(got[3:], EncodeUpdateRequest(ur)) {
		t.Fatal("AppendUpdateRequest diverges from EncodeUpdateRequest")
	}
	res := core.Result{Items: []string{"x", "y"}, OrderGuaranteed: true, PageIO: 12}
	if got := AppendResult([]byte("pfx"), res); !bytes.Equal(got[3:], EncodeResult(res)) {
		t.Fatal("AppendResult diverges from EncodeResult")
	}
}

// TestBufPoolReuse: a buffer cycled through the pool must come back
// zero-length and be safe to grow.
func TestBufPoolReuse(t *testing.T) {
	b := GetBuf()
	*b = append(*b, []byte("scratch")...)
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatalf("pooled buffer not reset: len=%d", len(*b2))
	}
	PutBuf(b2)
	PutBuf(nil) // must not panic
	// Oversized buffers are dropped, not pooled.
	big := GetBuf()
	*big = make([]byte, 0, maxPooledBuf+1)
	PutBuf(big)
}
