package wire

import (
	"errors"
	"reflect"
	"testing"

	"xbench/internal/core"
)

// TestPlanNodeRoundTrip: the OpExplain payload codec preserves the tree
// exactly, including fractional cost estimates and deep nesting.
func TestPlanNodeRoundTrip(t *testing.T) {
	n := &core.PlanNode{
		Op: "construct",
		Children: []*core.PlanNode{{
			Op: "sort", Detail: "order by",
			Children: []*core.PlanNode{{
				Op: "index-probe", Target: "date_of_release",
				Detail:   "date_of_release in [$LO..$HI]",
				EstPages: 130.25, EstRows: 1024,
			}},
		}},
	}
	got, err := DecodePlanNode(EncodePlanNode(n))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, n) {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", got, n)
	}
}

// TestPlanNodeDecodeCorrupt: truncation, trailing garbage and absurd
// child counts are errors, never panics or giant allocations.
func TestPlanNodeDecodeCorrupt(t *testing.T) {
	good := EncodePlanNode(&core.PlanNode{Op: "scan", Target: "order"})
	for i := 1; i < len(good); i++ {
		if _, err := DecodePlanNode(good[:i]); err == nil {
			t.Fatalf("truncation at %d decoded without error", i)
		}
	}
	if _, err := DecodePlanNode(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	// Declare 2^40 children with no bytes behind them.
	e := enc{}
	e.string("scan")
	e.string("")
	e.string("")
	e.uvarint(0)
	e.uvarint(0)
	e.uvarint(1 << 40)
	if _, err := DecodePlanNode(e.b); err == nil {
		t.Error("absurd child count decoded without error")
	}
}

// TestPlanNodeDecodeDeep: recursion is depth-bounded.
func TestPlanNodeDecodeDeep(t *testing.T) {
	n := &core.PlanNode{Op: "leaf"}
	for i := 0; i < maxPlanDepth+8; i++ {
		n = &core.PlanNode{Op: "wrap", Children: []*core.PlanNode{n}}
	}
	if _, err := DecodePlanNode(EncodePlanNode(n)); err == nil {
		t.Error("over-deep tree decoded without error")
	}
}

// TestExplainStatusMapping: core.ErrNoExplain crosses the wire as
// StatusNoExplain and reconstructs so errors.Is holds on the client;
// StatusBadRequest reconstructs as ErrBadRequest (the probe old servers
// answer for ops they predate).
func TestExplainStatusMapping(t *testing.T) {
	if s := StatusFor(core.ErrNoExplain); s != StatusNoExplain {
		t.Fatalf("StatusFor(ErrNoExplain) = %v", s)
	}
	err := DecodeError(StatusNoExplain, []byte("stub engine"))
	if !errors.Is(err, core.ErrNoExplain) {
		t.Fatalf("decoded %v, want ErrNoExplain wrap", err)
	}
	err = DecodeError(StatusBadRequest, []byte("unknown op 11"))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("decoded %v, want ErrBadRequest wrap", err)
	}
	if OpExplain.String() != "explain" {
		t.Errorf("OpExplain.String() = %q", OpExplain.String())
	}
}
