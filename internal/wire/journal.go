// OpJournal payloads: the codecs read replicas use to ship the primary's
// durable update journal over the wire. A replica polls with the index of
// the first record it has not applied; the primary answers with a bounded
// window of committed records starting there plus the index to poll from
// next. Records carry their idempotency keys, so a replica promoted to
// answering retries (or a router inspecting lag) sees the same identity
// the primary journaled.
package wire

import "xbench/internal/updatelog"

// MaxJournalBatch bounds how many records one OpJournal response carries.
// A replica far behind catches up in windows instead of one giant frame,
// keeping every response under the frame payload cap no matter how long
// the journal has grown.
const MaxJournalBatch = 256

// JournalPullRequest asks for committed journal records [Since, Since+n).
type JournalPullRequest struct {
	// Since is the journal index (0-based record position) to read from.
	Since uint64
	// Max bounds the records returned; 0 or anything above MaxJournalBatch
	// selects MaxJournalBatch.
	Max uint64
}

// EncodeJournalPullRequest serializes an OpJournal request payload.
func EncodeJournalPullRequest(r JournalPullRequest) []byte {
	var e enc
	e.uvarint(r.Since)
	e.uvarint(r.Max)
	return e.b
}

// DecodeJournalPullRequest parses an OpJournal request payload.
func DecodeJournalPullRequest(b []byte) (JournalPullRequest, error) {
	d := dec{b}
	var r JournalPullRequest
	var err error
	if r.Since, err = d.uvarint(); err != nil {
		return r, err
	}
	if r.Max, err = d.uvarint(); err != nil {
		return r, err
	}
	return r, nil
}

// JournalPullResponse carries one shipped window of the journal.
type JournalPullResponse struct {
	// Next is the index to poll from after applying Records: the request's
	// Since plus len(Records). Next == Since with no records means the
	// replica has caught up to the primary's committed tail.
	Next uint64
	// Records are the committed records at [Since, Next), in commit order.
	Records []updatelog.Record
}

// EncodeJournalPullResponse serializes an OpJournal success payload.
func EncodeJournalPullResponse(r JournalPullResponse) []byte {
	var e enc
	e.uvarint(r.Next)
	e.uvarint(uint64(len(r.Records)))
	for _, rec := range r.Records {
		e.byte(byte(rec.Kind))
		e.string(rec.Name)
		e.bytes(rec.Data)
		e.uvarint(rec.Client)
		e.uvarint(rec.Seq)
	}
	return e.b
}

// DecodeJournalPullResponse parses an OpJournal success payload.
func DecodeJournalPullResponse(b []byte) (JournalPullResponse, error) {
	d := dec{b}
	var r JournalPullResponse
	var err error
	if r.Next, err = d.uvarint(); err != nil {
		return r, err
	}
	n, err := d.uvarint()
	if err != nil {
		return r, err
	}
	r.Records = make([]updatelog.Record, 0, min(n, MaxJournalBatch))
	for i := uint64(0); i < n; i++ {
		var rec updatelog.Record
		k, err := d.byte()
		if err != nil {
			return r, err
		}
		rec.Kind = updatelog.Kind(k)
		if rec.Name, err = d.string(); err != nil {
			return r, err
		}
		if rec.Data, err = d.bytes(); err != nil {
			return r, err
		}
		if rec.Client, err = d.uvarint(); err != nil {
			return r, err
		}
		if rec.Seq, err = d.uvarint(); err != nil {
			return r, err
		}
		r.Records = append(r.Records, rec)
	}
	return r, nil
}
