// Pooled scratch buffers for the hot serialization paths. The client's
// pipelined transport and the server's batched response writer encode
// every frame into a buffer drawn from this pool, so steady-state request
// traffic allocates no per-frame garbage.
//
// Ownership contract: a buffer obtained from GetBuf is owned exclusively
// by the caller until PutBuf, and PutBuf transfers ownership back to the
// pool — the caller must not retain the buffer, any slice of it, or
// anything decoded in place over it past the Put. Frames whose payloads
// are recorded elsewhere (the server's dedup table, decoded request
// views) must NOT come from the pool; see DESIGN.md §13 for the audit of
// which paths pool and which deliberately do not.
package wire

import "sync"

// maxPooledBuf caps the capacity of buffers returned to the pool (1 MiB).
// A giant load payload would otherwise pin its allocation forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a zero-length scratch buffer with pooled capacity. The
// extra indirection (pointer to slice) lets PutBuf return grown buffers
// without allocating a new header per cycle.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer to the pool. Passing nil is a no-op; buffers
// grown beyond maxPooledBuf are dropped for the GC instead.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}
