package wire

import "context"

// ctxKeyIdem is the context key carrying an IdemKey through an engine call
// chain. It lets an update's identity survive a proxy hop: the server puts
// the request's key into the context before invoking its engine, and a
// client used *as* that engine (a router shard connection) sends the
// caller's key instead of minting a fresh one. The shard's durable journal
// then dedups on the identity the original client acknowledged, keeping
// exactly-once end-to-end through any number of forwarding tiers.
type ctxKeyIdem struct{}

// WithIdemKey returns a context carrying the update's idempotency key.
// Invalid (zero-client) keys are not attached.
func WithIdemKey(ctx context.Context, key IdemKey) context.Context {
	if !key.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyIdem{}, key)
}

// ContextIdemKey returns the idempotency key attached by WithIdemKey, or a
// zero (invalid) key when none is attached.
func ContextIdemKey(ctx context.Context) IdemKey {
	key, _ := ctx.Value(ctxKeyIdem{}).(IdemKey)
	return key
}
