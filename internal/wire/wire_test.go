package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"xbench/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Kind: byte(OpQuery), ID: 42, Payload: []byte("hello frame")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.ID != in.ID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("roundtrip: got %+v, want %+v", out, in)
	}
	// Empty payload is legal.
	buf.Reset()
	if err := WriteFrame(&buf, Frame{Kind: byte(OpPing), ID: 1}); err != nil {
		t.Fatal(err)
	}
	if out, err = ReadFrame(&buf); err != nil || len(out.Payload) != 0 {
		t.Fatalf("empty payload roundtrip: %+v, %v", out, err)
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Kind: byte(OpQuery), ID: 7, Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload byte
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload read: %v, want ErrChecksum", err)
	}
}

func TestFrameTornMidPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Kind: byte(OpQuery), ID: 7, Payload: []byte("a longer payload")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Cut the stream at every possible torn point: mid-header and
	// mid-payload must fail ErrUnexpectedEOF, a clean boundary io.EOF.
	for cut := 0; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if cut == 0 {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("cut at 0: %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(bytes.Repeat([]byte{0xAB}, 64))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage read: %v, want ErrBadMagic", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Kind: byte(OpPing), ID: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99 // version
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("future version read: %v, want ErrBadVersion", err)
	}
	if err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write: %v, want ErrTooLarge", err)
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	in := QueryRequest{
		Query:   core.Q17,
		Params:  core.Params{"W": "word", "X": "I1", "PHRASE": "two words"},
		Timeout: 1500 * time.Millisecond,
	}
	out, err := DecodeQueryRequest(EncodeQueryRequest(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	// Nil params stay nil.
	out, err = DecodeQueryRequest(EncodeQueryRequest(QueryRequest{Query: core.Q1}))
	if err != nil || out.Params != nil {
		t.Fatalf("nil params roundtrip: %+v, %v", out, err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := core.Result{
		Items:            []string{"<a>1</a>", "", "<b attr=\"x\">два</b>"},
		OrderGuaranteed:  true,
		MixedContentLost: false,
		PageIO:           12345,
	}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestUpdateAndLoadRoundTrip(t *testing.T) {
	u := UpdateRequest{Name: "order-update-3.xml", Data: []byte("<order/>"), Timeout: time.Second}
	gotU, err := DecodeUpdateRequest(EncodeUpdateRequest(u))
	if err != nil || !reflect.DeepEqual(u, gotU) {
		t.Fatalf("update roundtrip: %+v, %v", gotU, err)
	}

	l := LoadRequest{
		DB: core.Database{
			Class: core.DCMD,
			Size:  core.Small,
			Docs: []core.Doc{
				{Name: "order1.xml", Data: []byte("<order id=\"O1\"/>")},
				{Name: "Customer.xml", Data: []byte("<customers/>")},
			},
		},
		Timeout: 3 * time.Second,
	}
	gotL, err := DecodeLoadRequest(EncodeLoadRequest(l))
	if err != nil || !reflect.DeepEqual(l, gotL) {
		t.Fatalf("load roundtrip: %+v, %v", gotL, err)
	}

	st := core.LoadStats{Documents: 2, Rows: 10, Nodes: 0, Bytes: 999, PageIO: 55, SkippedMixed: 1}
	gotS, err := DecodeLoadStats(EncodeLoadStats(st))
	if err != nil || gotS != st {
		t.Fatalf("stats roundtrip: %+v, %v", gotS, err)
	}

	specs := []core.IndexSpec{{Class: core.DCSD, Target: "item/@id"}, {Class: core.TCSD, Target: "hw"}}
	gotSp, err := DecodeIndexSpecs(EncodeIndexSpecs(specs))
	if err != nil || !reflect.DeepEqual(specs, gotSp) {
		t.Fatalf("specs roundtrip: %+v, %v", gotSp, err)
	}

	c, sz, err := DecodeClassSize(EncodeClassSize(core.TCMD, core.Large))
	if err != nil || c != core.TCMD || sz != core.Large {
		t.Fatalf("class/size roundtrip: %v %v %v", c, sz, err)
	}

	n, err := DecodeInt64(EncodeInt64(-42))
	if err != nil || n != -42 {
		t.Fatalf("int64 roundtrip: %d, %v", n, err)
	}
}

func TestTruncatedPayloadsFailTyped(t *testing.T) {
	full := EncodeLoadRequest(LoadRequest{DB: core.Database{
		Class: core.DCMD,
		Docs:  []core.Doc{{Name: "a.xml", Data: []byte("<a/>")}},
	}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeLoadRequest(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: %v, want ErrTruncated", cut, err)
		}
	}
}

// TestErrorMappingRoundTrip pins the contract that remote errors satisfy
// the same errors.Is checks as in-process ones.
func TestErrorMappingRoundTrip(t *testing.T) {
	cases := []struct {
		err      error
		status   Status
		sentinel error
	}{
		{ErrOverloaded, StatusOverloaded, ErrOverloaded},
		{ErrShutdown, StatusShutdown, ErrShutdown},
		{core.ErrUnsupported, StatusUnsupported, core.ErrUnsupported},
		{core.ErrNoQuery, StatusNoQuery, core.ErrNoQuery},
		{core.ErrReadOnly, StatusReadOnly, core.ErrReadOnly},
		{context.Canceled, StatusCanceled, context.Canceled},
		{context.DeadlineExceeded, StatusDeadline, context.DeadlineExceeded},
	}
	for _, c := range cases {
		got := StatusFor(c.err)
		if got != c.status {
			t.Errorf("StatusFor(%v) = %d, want %d", c.err, got, c.status)
		}
		back := DecodeError(c.status, []byte("ctx: "+c.err.Error()))
		if !errors.Is(back, c.sentinel) {
			t.Errorf("DecodeError(%d) = %v, does not wrap %v", c.status, back, c.sentinel)
		}
	}
	// Wrapped errors map the same way.
	wrapped := errors.Join(errors.New("engine: query failed"), core.ErrNoQuery)
	if StatusFor(wrapped) != StatusNoQuery {
		t.Errorf("wrapped ErrNoQuery mapped to %d", StatusFor(wrapped))
	}
	if StatusFor(errors.New("anything else")) != StatusInternal {
		t.Error("unknown error did not map to StatusInternal")
	}
	if DecodeError(StatusOK, nil) != nil {
		t.Error("StatusOK decoded to a non-nil error")
	}
}
