package wire

import (
	"context"
	"reflect"
	"testing"

	"xbench/internal/core"
	"xbench/internal/updatelog"
)

func TestJournalPullRequestRoundTrip(t *testing.T) {
	for _, in := range []JournalPullRequest{
		{},
		{Since: 42, Max: 7},
		{Since: 1<<40 + 3, Max: MaxJournalBatch},
	} {
		out, err := DecodeJournalPullRequest(EncodeJournalPullRequest(in))
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("got %+v, want %+v", out, in)
		}
	}
}

func TestJournalPullResponseRoundTrip(t *testing.T) {
	in := JournalPullResponse{
		Next: 9,
		Records: []updatelog.Record{
			{Kind: updatelog.KindInsert, Name: "order-update-1.xml", Data: []byte("<order id=\"OU1\"/>"), Client: 3, Seq: 1},
			{Kind: updatelog.KindReplace, Name: "order-update-1.xml", Data: []byte("<order id=\"OU1\" v=\"2\"/>"), Client: 3, Seq: 2},
			{Kind: updatelog.KindDelete, Name: "order-update-1.xml", Client: 3, Seq: 3},
		},
	}
	out, err := DecodeJournalPullResponse(EncodeJournalPullResponse(in))
	if err != nil {
		t.Fatal(err)
	}
	// Delete records carry no data; nil vs empty is not significant.
	if out.Records[2].Data != nil && len(out.Records[2].Data) == 0 {
		out.Records[2].Data = nil
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v, want %+v", out, in)
	}

	// Empty window: caught up.
	empty, err := DecodeJournalPullResponse(EncodeJournalPullResponse(JournalPullResponse{Next: 5}))
	if err != nil || empty.Next != 5 || len(empty.Records) != 0 {
		t.Fatalf("empty window roundtrip: %+v, %v", empty, err)
	}
}

func TestJournalPullResponseTruncated(t *testing.T) {
	full := EncodeJournalPullResponse(JournalPullResponse{
		Next:    1,
		Records: []updatelog.Record{{Kind: updatelog.KindInsert, Name: "a.xml", Data: []byte("<a/>"), Client: 1, Seq: 1}},
	})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeJournalPullResponse(full[:n]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", n, len(full))
		}
	}
}

// TestResultShardErrorsTail pins the compatibility contract of the
// ShardErrors tail: a zero count encodes byte-identically to the
// pre-router format, and a non-zero count survives a round trip.
func TestResultShardErrorsTail(t *testing.T) {
	base := core.Result{Items: []string{"<a/>"}, OrderGuaranteed: true, PageIO: 7}
	degraded := base
	degraded.ShardErrors = 2

	plain := EncodeResult(base)
	tailed := EncodeResult(degraded)
	if reflect.DeepEqual(plain, tailed) {
		t.Fatal("ShardErrors tail not encoded")
	}
	if len(tailed) <= len(plain) {
		t.Fatalf("tail should extend encoding: %d vs %d", len(tailed), len(plain))
	}

	out, err := DecodeResult(tailed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(degraded, out) {
		t.Fatalf("got %+v, want %+v", out, degraded)
	}

	// An old-format payload (no tail) decodes with ShardErrors zero.
	out, err = DecodeResult(plain)
	if err != nil || out.ShardErrors != 0 {
		t.Fatalf("tail-less decode: %+v, %v", out, err)
	}
}

func TestContextIdemKey(t *testing.T) {
	ctx := context.Background()
	if k := ContextIdemKey(ctx); k.Valid() {
		t.Fatalf("bare context carries key %v", k)
	}
	key := IdemKey{Client: 11, Seq: 42}
	if got := ContextIdemKey(WithIdemKey(ctx, key)); got != key {
		t.Fatalf("got %v, want %v", got, key)
	}
	// Invalid keys are not attached.
	if got := ContextIdemKey(WithIdemKey(ctx, IdemKey{Seq: 9})); got.Valid() {
		t.Fatalf("invalid key attached: %v", got)
	}
}
