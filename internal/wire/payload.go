// Payload encodings for the remote engine operations. Every encoding is
// hand-rolled varint/length-prefixed binary: deterministic (maps are
// encoded in sorted key order), allocation-light, and versioned only by
// the frame header — the payloads themselves never change shape within a
// protocol version.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"xbench/internal/core"
)

// ErrTruncated marks a payload that ended before its declared contents.
var ErrTruncated = errors.New("wire: truncated payload")

// enc is a tiny append-only payload writer.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v byte)      { e.b = append(e.b, v) }
func (e *enc) bytes(v []byte)   { e.uvarint(uint64(len(v))); e.b = append(e.b, v...) }
func (e *enc) string(v string)  { e.uvarint(uint64(len(v))); e.b = append(e.b, v...) }

func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *enc) duration(v time.Duration) { e.varint(int64(v)) }

// dec is the matching payload reader.
type dec struct{ b []byte }

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if len(d.b) < 1 {
		return 0, ErrTruncated
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.b)) < n {
		return nil, ErrTruncated
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) string() (string, error) {
	v, err := d.bytes()
	return string(v), err
}

func (d *dec) bool() (bool, error) {
	v, err := d.byte()
	return v != 0, err
}

func (d *dec) duration() (time.Duration, error) {
	v, err := d.varint()
	return time.Duration(v), err
}

// QueryRequest is the OpQuery payload: one workload query with bound
// parameters and the client's remaining deadline (0 = none), which the
// server turns back into a context timeout so cancellation crosses the
// wire.
type QueryRequest struct {
	Query   core.QueryID
	Params  core.Params
	Timeout time.Duration
}

// EncodeQueryRequest serializes a QueryRequest (params in sorted key order).
func EncodeQueryRequest(r QueryRequest) []byte {
	return AppendQueryRequest(nil, r)
}

// AppendQueryRequest appends the QueryRequest encoding to dst and returns
// the extended slice — the allocation-free form the pipelined client uses
// with pooled buffers.
func AppendQueryRequest(dst []byte, r QueryRequest) []byte {
	e := enc{dst}
	e.varint(int64(r.Query))
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.string(k)
		e.string(r.Params[k])
	}
	e.duration(r.Timeout)
	return e.b
}

// DecodeQueryRequest parses an OpQuery payload.
func DecodeQueryRequest(b []byte) (QueryRequest, error) {
	d := dec{b}
	var r QueryRequest
	q, err := d.varint()
	if err != nil {
		return r, err
	}
	r.Query = core.QueryID(q)
	n, err := d.uvarint()
	if err != nil {
		return r, err
	}
	if n > 0 {
		r.Params = make(core.Params, n)
	}
	for i := uint64(0); i < n; i++ {
		k, err := d.string()
		if err != nil {
			return r, err
		}
		v, err := d.string()
		if err != nil {
			return r, err
		}
		r.Params[k] = v
	}
	if r.Timeout, err = d.duration(); err != nil {
		return r, err
	}
	return r, nil
}

// EncodeResult serializes a core.Result (the OpQuery success payload).
func EncodeResult(r core.Result) []byte {
	return AppendResult(nil, r)
}

// AppendResult appends the core.Result encoding to dst and returns the
// extended slice — used by the server with pooled response buffers.
func AppendResult(dst []byte, r core.Result) []byte {
	e := enc{dst}
	e.uvarint(uint64(len(r.Items)))
	for _, it := range r.Items {
		e.string(it)
	}
	e.bool(r.OrderGuaranteed)
	e.bool(r.MixedContentLost)
	e.varint(r.PageIO)
	if r.ShardErrors > 0 {
		// Self-delimiting optional tail, like the update idempotency key:
		// a zero count encodes nothing, so single-engine results stay
		// byte-identical to the pre-router encoding and old peers decode
		// them unchanged (old readers ignore the tail, old writers never
		// produce one).
		e.varint(int64(r.ShardErrors))
	}
	return e.b
}

// DecodeResult parses an OpQuery success payload.
func DecodeResult(b []byte) (core.Result, error) {
	d := dec{b}
	var r core.Result
	n, err := d.uvarint()
	if err != nil {
		return r, err
	}
	r.Items = make([]string, 0, min(n, 1<<16))
	for i := uint64(0); i < n; i++ {
		it, err := d.string()
		if err != nil {
			return r, err
		}
		r.Items = append(r.Items, it)
	}
	if r.OrderGuaranteed, err = d.bool(); err != nil {
		return r, err
	}
	if r.MixedContentLost, err = d.bool(); err != nil {
		return r, err
	}
	if r.PageIO, err = d.varint(); err != nil {
		return r, err
	}
	if len(d.b) > 0 { // degraded scatter-gather tail (see AppendResult)
		v, err := d.varint()
		if err != nil {
			return r, err
		}
		r.ShardErrors = int(v)
	}
	return r, nil
}

// IdemKey identifies one logical update exactly once across retries:
// Client is the issuing client's random 64-bit identity, Seq its
// per-client monotonic sequence number. A retry re-sends the identical
// key, so the server can recognize a duplicate and answer with the
// original outcome instead of re-applying. The zero key (Client == 0)
// means "no key" — the pre-v2 wire format, or a caller that opted out.
type IdemKey struct {
	Client uint64
	Seq    uint64
}

// Valid reports whether the key identifies an update (non-zero client).
func (k IdemKey) Valid() bool { return k.Client != 0 }

// String formats the key the way journals and logs print it.
func (k IdemKey) String() string {
	return fmt.Sprintf("%016x/%d", k.Client, k.Seq)
}

// UpdateRequest is the OpInsert/OpReplace/OpDelete payload (Data is empty
// for deletes). Key is the optional idempotency key (zero on protocol v1
// frames, which predate it).
type UpdateRequest struct {
	Name    string
	Data    []byte
	Timeout time.Duration
	Key     IdemKey
}

// EncodeUpdateRequest serializes an UpdateRequest. The idempotency key is
// a self-delimiting optional tail (protocol v2): a zero key encodes
// nothing, so the payload is byte-identical to the v1 encoding and v1
// peers decode it unchanged.
func EncodeUpdateRequest(r UpdateRequest) []byte {
	return AppendUpdateRequest(nil, r)
}

// AppendUpdateRequest appends the UpdateRequest encoding to dst and
// returns the extended slice.
func AppendUpdateRequest(dst []byte, r UpdateRequest) []byte {
	e := enc{dst}
	e.string(r.Name)
	e.bytes(r.Data)
	e.duration(r.Timeout)
	if r.Key.Valid() {
		e.uvarint(r.Key.Client)
		e.uvarint(r.Key.Seq)
	}
	return e.b
}

// DecodeUpdateRequest parses an update payload. A v1 payload (no key
// tail) decodes with the zero key.
func DecodeUpdateRequest(b []byte) (UpdateRequest, error) {
	d := dec{b}
	var r UpdateRequest
	var err error
	if r.Name, err = d.string(); err != nil {
		return r, err
	}
	if r.Data, err = d.bytes(); err != nil {
		return r, err
	}
	if r.Timeout, err = d.duration(); err != nil {
		return r, err
	}
	if len(d.b) > 0 { // v2 idempotency-key tail
		if r.Key.Client, err = d.uvarint(); err != nil {
			return r, err
		}
		if r.Key.Seq, err = d.uvarint(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// LoadRequest is the OpLoad payload: the full serialized database plus
// the client's remaining deadline.
type LoadRequest struct {
	DB      core.Database
	Timeout time.Duration
}

// EncodeLoadRequest serializes a LoadRequest.
func EncodeLoadRequest(r LoadRequest) []byte {
	var e enc
	e.byte(byte(r.DB.Class))
	e.byte(byte(r.DB.Size))
	e.uvarint(uint64(len(r.DB.Docs)))
	for _, doc := range r.DB.Docs {
		e.string(doc.Name)
		e.bytes(doc.Data)
	}
	e.duration(r.Timeout)
	return e.b
}

// DecodeLoadRequest parses an OpLoad payload.
func DecodeLoadRequest(b []byte) (LoadRequest, error) {
	d := dec{b}
	var r LoadRequest
	c, err := d.byte()
	if err != nil {
		return r, err
	}
	s, err := d.byte()
	if err != nil {
		return r, err
	}
	r.DB.Class, r.DB.Size = core.Class(c), core.Size(s)
	n, err := d.uvarint()
	if err != nil {
		return r, err
	}
	r.DB.Docs = make([]core.Doc, 0, min(n, 1<<16))
	for i := uint64(0); i < n; i++ {
		name, err := d.string()
		if err != nil {
			return r, err
		}
		data, err := d.bytes()
		if err != nil {
			return r, err
		}
		r.DB.Docs = append(r.DB.Docs, core.Doc{Name: name, Data: data})
	}
	if r.Timeout, err = d.duration(); err != nil {
		return r, err
	}
	return r, nil
}

// EncodeLoadStats serializes a core.LoadStats (the OpLoad success payload).
func EncodeLoadStats(st core.LoadStats) []byte {
	var e enc
	e.varint(int64(st.Documents))
	e.varint(int64(st.Rows))
	e.varint(int64(st.Nodes))
	e.varint(int64(st.Bytes))
	e.varint(st.PageIO)
	e.varint(int64(st.SkippedMixed))
	return e.b
}

// DecodeLoadStats parses an OpLoad success payload.
func DecodeLoadStats(b []byte) (core.LoadStats, error) {
	d := dec{b}
	var st core.LoadStats
	for _, dst := range []*int{&st.Documents, &st.Rows, &st.Nodes, &st.Bytes} {
		v, err := d.varint()
		if err != nil {
			return st, err
		}
		*dst = int(v)
	}
	v, err := d.varint()
	if err != nil {
		return st, err
	}
	st.PageIO = v
	if v, err = d.varint(); err != nil {
		return st, err
	}
	st.SkippedMixed = int(v)
	return st, nil
}

// EncodeIndexSpecs serializes the OpIndexes payload.
func EncodeIndexSpecs(specs []core.IndexSpec) []byte {
	var e enc
	e.uvarint(uint64(len(specs)))
	for _, s := range specs {
		e.byte(byte(s.Class))
		e.string(s.Target)
	}
	return e.b
}

// DecodeIndexSpecs parses an OpIndexes payload.
func DecodeIndexSpecs(b []byte) ([]core.IndexSpec, error) {
	d := dec{b}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	specs := make([]core.IndexSpec, 0, min(n, 1<<12))
	for i := uint64(0); i < n; i++ {
		c, err := d.byte()
		if err != nil {
			return nil, err
		}
		t, err := d.string()
		if err != nil {
			return nil, err
		}
		specs = append(specs, core.IndexSpec{Class: core.Class(c), Target: t})
	}
	return specs, nil
}

// EncodeClassSize serializes the OpSupports payload.
func EncodeClassSize(c core.Class, s core.Size) []byte {
	return []byte{byte(c), byte(s)}
}

// DecodeClassSize parses an OpSupports payload.
func DecodeClassSize(b []byte) (core.Class, core.Size, error) {
	if len(b) < 2 {
		return 0, 0, ErrTruncated
	}
	return core.Class(b[0]), core.Size(b[1]), nil
}

// EncodeInt64 serializes a single counter (the OpPageIO success payload).
func EncodeInt64(v int64) []byte {
	var e enc
	e.varint(v)
	return e.b
}

// DecodeInt64 parses an OpPageIO success payload.
func DecodeInt64(b []byte) (int64, error) {
	d := dec{b}
	return d.varint()
}

// maxPlanDepth bounds DecodePlanNode recursion so a malicious or corrupt
// payload cannot blow the stack.
const maxPlanDepth = 64

// EncodePlanNode serializes a plan tree (the OpExplain success payload):
// a recursive preorder encoding of op/target/detail, the cost estimates
// as IEEE-754 bit patterns, and the child count.
func EncodePlanNode(n *core.PlanNode) []byte { return AppendPlanNode(nil, n) }

// AppendPlanNode appends the EncodePlanNode encoding of n to dst.
func AppendPlanNode(dst []byte, n *core.PlanNode) []byte {
	e := enc{b: dst}
	appendPlanNode(&e, n)
	return e.b
}

func appendPlanNode(e *enc, n *core.PlanNode) {
	if n == nil {
		n = &core.PlanNode{}
	}
	e.string(n.Op)
	e.string(n.Target)
	e.string(n.Detail)
	e.uvarint(math.Float64bits(n.EstPages))
	e.uvarint(math.Float64bits(n.EstRows))
	e.uvarint(uint64(len(n.Children)))
	for _, c := range n.Children {
		appendPlanNode(e, c)
	}
}

// DecodePlanNode parses an OpExplain success payload.
func DecodePlanNode(b []byte) (*core.PlanNode, error) {
	d := dec{b}
	n, err := decodePlanNode(&d, 0)
	if err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after plan tree", len(d.b))
	}
	return n, nil
}

func decodePlanNode(d *dec, depth int) (*core.PlanNode, error) {
	if depth > maxPlanDepth {
		return nil, fmt.Errorf("wire: plan tree deeper than %d", maxPlanDepth)
	}
	n := &core.PlanNode{}
	var err error
	if n.Op, err = d.string(); err != nil {
		return nil, err
	}
	if n.Target, err = d.string(); err != nil {
		return nil, err
	}
	if n.Detail, err = d.string(); err != nil {
		return nil, err
	}
	pages, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	rows, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	n.EstPages, n.EstRows = math.Float64frombits(pages), math.Float64frombits(rows)
	kids, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each child encodes to at least one byte; a count beyond the
	// remaining payload is corruption, not a big tree.
	if kids > uint64(len(d.b)) {
		return nil, ErrTruncated
	}
	if kids > 0 {
		n.Children = make([]*core.PlanNode, 0, kids)
	}
	for i := uint64(0); i < kids; i++ {
		c, err := decodePlanNode(d, depth+1)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}
