package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
	"time"
)

// v1Frame hand-builds a protocol-version-1 frame around payload, byte for
// byte what a pre-idempotency-key peer would put on the wire.
func v1Frame(kind byte, id uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = 1 // protocol version 1
	buf[3] = kind
	binary.BigEndian.PutUint64(buf[4:12], id)
	binary.BigEndian.PutUint32(buf[12:16], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// TestVersion1FramesStillDecode: the v2 reader accepts v1 frames, and a
// v1 update payload (no key tail) decodes with the zero key — the version
// gate for the idempotency-key rollout.
func TestVersion1FramesStillDecode(t *testing.T) {
	payload := EncodeUpdateRequest(UpdateRequest{Name: "a.xml", Data: []byte("<a/>"), Timeout: time.Second})
	f, err := ReadFrame(bytes.NewReader(v1Frame(byte(OpInsert), 9, payload)))
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	req, err := DecodeUpdateRequest(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Key.Valid() {
		t.Fatalf("v1 payload decoded a key: %v", req.Key)
	}
	if req.Name != "a.xml" || string(req.Data) != "<a/>" || req.Timeout != time.Second {
		t.Fatalf("v1 payload fields: %+v", req)
	}
}

// TestFrameCapRejectedBeforeAllocation: a header declaring a payload over
// MaxPayload fails ErrTooLarge without the reader attempting to read (or
// allocate) the declared 64 MiB + 1.
func TestFrameCapRejectedBeforeAllocation(t *testing.T) {
	hdr := v1Frame(byte(OpQuery), 1, nil)[:headerSize]
	binary.BigEndian.PutUint32(hdr[12:16], MaxPayload+1)
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized declared payload: %v, want ErrTooLarge", err)
	}
	// The write side enforces the same cap symmetrically.
	if err := WriteFrame(&bytes.Buffer{}, Frame{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write: %v, want ErrTooLarge", err)
	}
}

// TestUpdateRequestKeyRoundTrip pins the optional-tail encoding: a valid
// key rides along and round-trips; the zero key encodes nothing, keeping
// the payload byte-identical to the v1 format.
func TestUpdateRequestKeyRoundTrip(t *testing.T) {
	keyed := UpdateRequest{
		Name:    "order-update-7.xml",
		Data:    []byte("<order/>"),
		Timeout: 250 * time.Millisecond,
		Key:     IdemKey{Client: 0xfeedface, Seq: 41},
	}
	got, err := DecodeUpdateRequest(EncodeUpdateRequest(keyed))
	if err != nil || !reflect.DeepEqual(keyed, got) {
		t.Fatalf("keyed roundtrip: %+v, %v", got, err)
	}

	bare := UpdateRequest{Name: "a.xml", Timeout: time.Second}
	enc := EncodeUpdateRequest(bare)
	legacy := EncodeUpdateRequest(UpdateRequest{Name: "a.xml", Timeout: time.Second, Key: IdemKey{}})
	if !bytes.Equal(enc, legacy) {
		t.Fatal("zero key changed the encoding")
	}
	if got, err = DecodeUpdateRequest(enc); err != nil || got.Key.Valid() {
		t.Fatalf("bare roundtrip: %+v, %v", got, err)
	}
}

// TestUpdateRequestTruncatedKeyTail: every cut through the key tail fails
// typed, never panics and never silently drops half a key.
func TestUpdateRequestTruncatedKeyTail(t *testing.T) {
	full := EncodeUpdateRequest(UpdateRequest{
		Name: "a.xml", Data: []byte("<a/>"),
		Key: IdemKey{Client: 1<<63 + 12345, Seq: 1 << 40}, // multi-byte varints
	})
	bare := len(EncodeUpdateRequest(UpdateRequest{Name: "a.xml", Data: []byte("<a/>")}))
	for cut := bare + 1; cut < len(full); cut++ {
		if _, err := DecodeUpdateRequest(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: %v, want ErrTruncated", cut, err)
		}
	}
}

// TestTruncatedVarintFailsTyped: an unterminated varint (all continuation
// bits) and a varint cut mid-value both decode to ErrTruncated.
func TestTruncatedVarintFailsTyped(t *testing.T) {
	// Name length runs off the end of the payload: continuation bytes only.
	unterminated := bytes.Repeat([]byte{0x80}, 4)
	if _, err := DecodeUpdateRequest(unterminated); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unterminated varint: %v, want ErrTruncated", err)
	}
	// Over-long varint (> 10 bytes of continuation) overflows uint64.
	overflow := bytes.Repeat([]byte{0xFF}, 11)
	if _, err := DecodeUpdateRequest(overflow); !errors.Is(err, ErrTruncated) {
		t.Fatalf("overflowing varint: %v, want ErrTruncated", err)
	}
	// A declared length larger than the remaining bytes.
	var e enc
	e.uvarint(1 << 20)
	if _, err := DecodeUpdateRequest(e.b); !errors.Is(err, ErrTruncated) {
		t.Fatalf("overlong declared name: %v, want ErrTruncated", err)
	}
}

// FuzzUpdateRequestRoundTrip fuzzes the update codec over the full field
// space, including the idempotency-key tail: encode(decode(encode(x)))
// must be stable and lossless.
func FuzzUpdateRequestRoundTrip(f *testing.F) {
	f.Add("a.xml", []byte("<a/>"), int64(time.Second), uint64(1), uint64(1))
	f.Add("", []byte(nil), int64(0), uint64(0), uint64(99))
	f.Add("order-update-3.xml", []byte{0, 1, 2, 0xFF}, int64(-5), uint64(1<<63), uint64(1<<62))
	f.Fuzz(func(t *testing.T, name string, data []byte, timeout int64, client, seq uint64) {
		in := UpdateRequest{
			Name:    name,
			Data:    data,
			Timeout: time.Duration(timeout),
			Key:     IdemKey{Client: client, Seq: seq},
		}
		enc1 := EncodeUpdateRequest(in)
		out, err := DecodeUpdateRequest(enc1)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		// A zero-client key does not survive the wire (it encodes as "no
		// key"); the seq is deliberately dropped with it.
		want := in
		if !in.Key.Valid() {
			want.Key = IdemKey{}
		}
		if len(out.Data) == 0 {
			out.Data = nil
		}
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !reflect.DeepEqual(want, out) {
			t.Fatalf("roundtrip: got %+v, want %+v", out, want)
		}
		if enc2 := EncodeUpdateRequest(out); !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encode unstable: %x vs %x", enc1, enc2)
		}
	})
}

// FuzzDecodeUpdateRequest feeds arbitrary bytes to the decoder: it must
// return cleanly (typed error or value), never panic or over-read.
func FuzzDecodeUpdateRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeUpdateRequest(UpdateRequest{Name: "a.xml", Key: IdemKey{Client: 3, Seq: 7}}))
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeUpdateRequest(b)
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		// Whatever decoded must re-encode without error.
		_ = EncodeUpdateRequest(req)
	})
}
