// Package core defines the central vocabulary of the XBench benchmark:
// the four database classes, the scale steps, the abstract query
// identifiers, and the Engine interface that every system under test
// implements. All other packages build on these types.
//
// XBench (Yao, Özsu, Khandelwal; ICDE 2004) characterizes XML database
// applications along two dimensions — data-centric (DC) vs text-centric
// (TC) applications, and single-document (SD) vs multi-document (MD)
// databases — giving four benchmark classes, each with its own database
// generator and workload instantiation.
package core

import (
	"fmt"
	"strings"
)

// Class identifies one of the four XBench database classes (paper Table 1).
type Class int

const (
	// TCSD is text-centric / single document: one big dictionary.xml with
	// numerous word entries, deep nesting and cross references.
	TCSD Class = iota
	// TCMD is text-centric / multiple documents: a corpus of articleXXX.xml
	// files with loose, irregular, possibly recursive schemas.
	TCMD
	// DCSD is data-centric / single document: one catalog.xml produced by a
	// nesting join of TPC-W tables (ITEM base).
	DCSD
	// DCMD is data-centric / multiple documents: orderXXX.xml per order plus
	// flat-translated Customer/Item/Author/Address/Country documents.
	DCMD
)

// Classes lists all four classes in the order the paper's tables use.
var Classes = []Class{DCSD, DCMD, TCSD, TCMD}

// String returns the paper's notation, e.g. "DC/SD".
func (c Class) String() string {
	switch c {
	case TCSD:
		return "TC/SD"
	case TCMD:
		return "TC/MD"
	case DCSD:
		return "DC/SD"
	case DCMD:
		return "DC/MD"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Code returns the compact lowercase code used in CLI flags and database
// instance names, e.g. "tcsd".
func (c Class) Code() string {
	return strings.ToLower(strings.ReplaceAll(c.String(), "/", ""))
}

// TextCentric reports whether the class manages natively-XML text data.
func (c Class) TextCentric() bool { return c == TCSD || c == TCMD }

// SingleDocument reports whether the database consists of one XML document.
func (c Class) SingleDocument() bool { return c == TCSD || c == DCSD }

// ParseClass converts a code such as "tcsd" or "TC/SD" to a Class.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.NewReplacer("/", "", "-", "", "_", "").Replace(s)) {
	case "tcsd":
		return TCSD, nil
	case "tcmd":
		return TCMD, nil
	case "dcsd":
		return DCSD, nil
	case "dcmd":
		return DCMD, nil
	}
	return 0, fmt.Errorf("core: unknown class %q (want tcsd, tcmd, dcsd or dcmd)", s)
}

// Size is one of the XBench scale steps. Paper sizes are 10 MB (small),
// 100 MB (normal), 1 GB (large) and 10 GB (huge), spaced 10x apart. Our
// default bench scales keep the 10x spacing but shrink the absolute sizes
// so the full grid runs in CI; cmd/xbench can generate paper-scale data.
type Size int

const (
	Small Size = iota
	Normal
	Large
	Huge
)

// Sizes lists the three sizes the paper reports results for.
var Sizes = []Size{Small, Normal, Large}

func (s Size) String() string {
	switch s {
	case Small:
		return "Small"
	case Normal:
		return "Normal"
	case Large:
		return "Large"
	case Huge:
		return "Huge"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// Factor returns the scale multiplier relative to Small (1, 10, 100, 1000).
func (s Size) Factor() int {
	f := 1
	for i := Size(0); i < s; i++ {
		f *= 10
	}
	return f
}

// ParseSize converts "small", "normal", "large" or "huge" to a Size.
func ParseSize(s string) (Size, error) {
	switch strings.ToLower(s) {
	case "small", "s":
		return Small, nil
	case "normal", "n":
		return Normal, nil
	case "large", "l":
		return Large, nil
	case "huge", "h":
		return Huge, nil
	}
	return 0, fmt.Errorf("core: unknown size %q (want small, normal, large or huge)", s)
}

// InstanceName returns the database instance naming scheme of the paper,
// e.g. TCSD + Small -> "TCSDS".
func InstanceName(c Class, s Size) string {
	return strings.ReplaceAll(c.String(), "/", "") + s.String()[:1]
}
