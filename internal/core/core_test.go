package core

import "testing"

func TestClassStringAndCode(t *testing.T) {
	cases := map[Class][2]string{
		TCSD: {"TC/SD", "tcsd"},
		TCMD: {"TC/MD", "tcmd"},
		DCSD: {"DC/SD", "dcsd"},
		DCMD: {"DC/MD", "dcmd"},
	}
	for c, want := range cases {
		if c.String() != want[0] || c.Code() != want[1] {
			t.Errorf("%d: String=%q Code=%q", c, c.String(), c.Code())
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !TCSD.TextCentric() || !TCMD.TextCentric() || DCSD.TextCentric() {
		t.Fatal("TextCentric wrong")
	}
	if !TCSD.SingleDocument() || !DCSD.SingleDocument() || DCMD.SingleDocument() {
		t.Fatal("SingleDocument wrong")
	}
}

func TestParseClass(t *testing.T) {
	for _, s := range []string{"tcsd", "TC/SD", "tc-sd", "TC_SD"} {
		c, err := ParseClass(s)
		if err != nil || c != TCSD {
			t.Errorf("ParseClass(%q) = %v, %v", s, c, err)
		}
	}
	if _, err := ParseClass("nope"); err == nil {
		t.Fatal("ParseClass accepted garbage")
	}
}

func TestSize(t *testing.T) {
	if Small.Factor() != 1 || Normal.Factor() != 10 || Large.Factor() != 100 || Huge.Factor() != 1000 {
		t.Fatal("Factor spacing not 10x")
	}
	if s, err := ParseSize("Normal"); err != nil || s != Normal {
		t.Fatal("ParseSize normal failed")
	}
	if s, err := ParseSize("l"); err != nil || s != Large {
		t.Fatal("ParseSize shorthand failed")
	}
	if _, err := ParseSize("giant"); err == nil {
		t.Fatal("ParseSize accepted garbage")
	}
}

func TestInstanceName(t *testing.T) {
	if got := InstanceName(TCSD, Small); got != "TCSDS" {
		t.Fatalf("InstanceName = %q", got)
	}
	if got := InstanceName(DCMD, Normal); got != "DCMDN" {
		t.Fatalf("InstanceName = %q", got)
	}
}

func TestDatabaseBytes(t *testing.T) {
	db := &Database{Class: DCSD, Size: Small, Docs: []Doc{
		{Name: "a.xml", Data: []byte("12345")},
		{Name: "b.xml", Data: []byte("678")},
	}}
	if db.Bytes() != 8 {
		t.Fatalf("Bytes = %d", db.Bytes())
	}
	if db.Instance() != "DCSDS" {
		t.Fatalf("Instance = %q", db.Instance())
	}
}

func TestIndexSpecAttribute(t *testing.T) {
	if !(IndexSpec{Class: DCSD, Target: "item/@id"}).Attribute() {
		t.Fatal("item/@id should be an attribute index")
	}
	if (IndexSpec{Class: DCSD, Target: "date_of_release"}).Attribute() {
		t.Fatal("date_of_release is not an attribute index")
	}
}

func TestQueryIDGroups(t *testing.T) {
	if Q1.FunctionGroup() != "Exact match" || Q17.FunctionGroup() != "Text search" {
		t.Fatal("FunctionGroup wrong")
	}
	if Q5.String() != "Q5" {
		t.Fatal("String wrong")
	}
	seen := map[string]bool{}
	for q := Q1; q <= Q20; q++ {
		g := q.FunctionGroup()
		if g == "Unknown" {
			t.Fatalf("%s has no function group", q)
		}
		seen[g] = true
	}
	if len(seen) != 12 {
		t.Fatalf("expected the paper's 12 functional groups, got %d", len(seen))
	}
}

func TestParams(t *testing.T) {
	p := Params{"X": "I1"}
	if p.Get("X") != "I1" || p.Get("missing") != "" {
		t.Fatal("Params.Get wrong")
	}
}
