package core

import "fmt"

// QueryID identifies one of the 20 abstract XBench query types (paper §2.2).
type QueryID int

// The 20 abstract queries. Each workload class instantiates a subset.
const (
	Q1  QueryID = 1  // exact match, shallow
	Q2  QueryID = 2  // exact match, deep
	Q3  QueryID = 3  // function application (aggregates)
	Q4  QueryID = 4  // ordered access, relative
	Q5  QueryID = 5  // ordered access, absolute
	Q6  QueryID = 6  // existential quantification
	Q7  QueryID = 7  // universal quantification
	Q8  QueryID = 8  // path expression, one unknown element
	Q9  QueryID = 9  // path expression, multiple unknown elements
	Q10 QueryID = 10 // sorting, string type
	Q11 QueryID = 11 // sorting, non-string type
	Q12 QueryID = 12 // document construction, preserving structure
	Q13 QueryID = 13 // document construction, transforming structure
	Q14 QueryID = 14 // irregular data: missing elements
	Q15 QueryID = 15 // irregular data: empty values
	Q16 QueryID = 16 // retrieval of individual documents
	Q17 QueryID = 17 // text search, uni-gram
	Q18 QueryID = 18 // text search, bi-/n-gram (phrase)
	Q19 QueryID = 19 // references and joins
	Q20 QueryID = 20 // datatype casting
)

func (q QueryID) String() string { return fmt.Sprintf("Q%d", int(q)) }

// FunctionGroup returns the paper's functional category for the query.
func (q QueryID) FunctionGroup() string {
	switch q {
	case Q1, Q2:
		return "Exact match"
	case Q3:
		return "Function application"
	case Q4, Q5:
		return "Ordered access"
	case Q6, Q7:
		return "Quantification"
	case Q8, Q9:
		return "Path expressions"
	case Q10, Q11:
		return "Sorting"
	case Q12, Q13:
		return "Document construction"
	case Q14, Q15:
		return "Irregular data"
	case Q16:
		return "Retrieval of individual documents"
	case Q17, Q18:
		return "Text search"
	case Q19:
		return "References and joins"
	case Q20:
		return "Datatype casting"
	}
	return "Unknown"
}

// Params carries the bound parameters of a query instance (the "X", "Y",
// "K1"/"K2" placeholders of the paper's abstract query statements).
type Params map[string]string

// Get returns the parameter or "" when absent.
func (p Params) Get(k string) string { return p[k] }

// Result is the outcome of executing one workload query on one engine.
type Result struct {
	// Items holds the serialized result sequence, one string per item.
	Items []string
	// OrderGuaranteed is false when the engine cannot guarantee document
	// order in the result (shredded mappings without order columns;
	// paper §3.2.2: results "not necessarily accurate").
	OrderGuaranteed bool
	// MixedContentLost is true when the storage mapping dropped
	// mixed-content text that the query would otherwise return.
	MixedContentLost bool
	// PageIO is the number of page reads+writes the execution caused.
	PageIO int64
	// ShardErrors counts shards that failed to contribute to this result.
	// It is zero everywhere except on results assembled by a scatter-gather
	// router running its degraded partial-failure policy, where the items
	// are the union of the shards that answered and ShardErrors reports
	// how many did not (DESIGN.md §16).
	ShardErrors int
}

// Count returns the number of result items.
func (r Result) Count() int { return len(r.Items) }
