package core

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// planOnlyEngine implements Engine but not Explainer.
type planOnlyEngine struct{ Engine }

func (planOnlyEngine) Name() string { return "opaque" }

// explainEngine adds Explainer on top.
type explainEngine struct {
	planOnlyEngine
	node *PlanNode
}

func (e explainEngine) Explain(context.Context, QueryID, Params) (*PlanNode, error) {
	return e.node, nil
}

// TestExplainFallback: engines without Explainer — the EngineV1 adapter
// path — degrade to an error wrapping ErrNoExplain, not a panic or a
// bare failure.
func TestExplainFallback(t *testing.T) {
	_, err := Explain(context.Background(), planOnlyEngine{}, Q1, nil)
	if !errors.Is(err, ErrNoExplain) {
		t.Fatalf("err = %v, want ErrNoExplain", err)
	}
	if !strings.Contains(err.Error(), "opaque") {
		t.Errorf("err %q does not name the engine", err)
	}
}

// TestExplainDispatch: engines that do implement Explainer are served
// through the same entry point.
func TestExplainDispatch(t *testing.T) {
	want := &PlanNode{Op: "scan", Target: "order"}
	got, err := Explain(context.Background(), explainEngine{node: want}, Q1, nil)
	if err != nil || got != want {
		t.Fatalf("got %v, %v; want the engine's node", got, err)
	}
}

// TestPlanNodeFormat: the printable tree is the API's stable surface —
// indentation, detail brackets, and cost suffix.
func TestPlanNodeFormat(t *testing.T) {
	n := &PlanNode{
		Op: "limit", Target: "1", Detail: "limit-pushdown",
		Children: []*PlanNode{{
			Op: "index-probe", Target: "item/@id", Detail: "@id = $X",
			EstPages: 3, EstRows: 1,
		}},
	}
	want := "limit 1 [limit-pushdown]\n  index-probe item/@id [@id = $X] (cost=3.0 rows=1)\n"
	if got := n.Format(); got != want {
		t.Fatalf("Format:\n%q\nwant\n%q", got, want)
	}
	if got := n.String(); got != strings.TrimRight(want, "\n") {
		t.Fatalf("String: %q", got)
	}
}
