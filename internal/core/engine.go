package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrUnsupported is returned by engines that cannot host a class/size
// combination, mirroring the blank cells of the paper's result tables
// (Xcolumn cannot store SD classes; Xcollection rejects Normal/Large SD
// databases due to its 1024-row decomposition limit).
var ErrUnsupported = errors.New("core: class/size combination not supported by this engine")

// ErrNoQuery is returned when a workload query is not defined for the
// engine's class (each class instantiates only a subset of Q1..Q20).
var ErrNoQuery = errors.New("core: query not defined for this class")

// ErrReadOnly is returned by engines (or adapters) that cannot apply
// document updates — notably legacy EngineV1 implementations wrapped
// with AdaptV1, which predate the update workload.
var ErrReadOnly = errors.New("core: engine does not support document updates")

// IsNotAnswered reports whether err means an engine legitimately declines
// a query — the query is not defined for the class or the combination is
// unsupported — rather than failing it.
func IsNotAnswered(err error) bool {
	return errors.Is(err, ErrNoQuery) || errors.Is(err, ErrUnsupported)
}

// Engine is a system under test. The four implementations model the four
// storage strategies of the paper: native (X-Hive), xcolumn (DB2 XML
// Extender XML column), xcollection (DB2 XML Extender XML collection), and
// sqlserver (SQL Server 2000 + SQLXML bulk load).
//
// Concurrency contract: Execute is safe to call from many goroutines
// against a loaded database. Load, BuildIndexes and ColdReset are
// exclusive — they block until in-flight queries drain and queries issued
// meanwhile wait. PageIO may be read at any time.
type Engine interface {
	// Name returns the row label used in the paper's tables,
	// e.g. "Xcolumn", "Xcollection", "SQL Server", "X-Hive".
	Name() string

	// Supports reports whether the engine can host the combination; it
	// returns nil or ErrUnsupported (possibly wrapped with a reason).
	Supports(c Class, s Size) error

	// Load bulk-loads a generated database, replacing any prior contents.
	// Validation against a schema is off, as in the paper's experiments.
	// Cancellation via ctx is honored between documents; a canceled load
	// leaves an empty, loadable database.
	Load(ctx context.Context, db *Database) (LoadStats, error)

	// BuildIndexes creates the value indexes of paper Table 3 relevant to
	// the loaded class. Called after Load, exactly like the paper ("all
	// arbitrary indexes are created separately after bulk loading").
	BuildIndexes(specs []IndexSpec) error

	// Execute runs one workload query with bound parameters. Engines that
	// are not native XML stores run their own hand-translated relational
	// plans, as the paper's authors translated XQuery to SQL by hand.
	// Cancellation/timeout via ctx is honored at page-fetch granularity:
	// the scan and probe loops check the context before each page access.
	Execute(ctx context.Context, q QueryID, p Params) (Result, error)

	// ColdReset drops all cached pages so the next query is a cold run
	// ("from the time when a user submits a request ... to prevent caching
	// effects"). It quiesces: in-flight queries finish first, and queries
	// submitted during the reset wait for it.
	ColdReset()

	// PageIO returns cumulative page I/O performed by the engine. It is
	// safe to call concurrently with Execute.
	PageIO() int64

	// InsertDocument adds a new document to the loaded database (update
	// workload U1). It fails if a document of that name already exists.
	// The write is journaled before it is applied, so a crash at any point
	// recovers to either the pre- or post-insert state, never a torn one.
	InsertDocument(ctx context.Context, name string, data []byte) error

	// ReplaceDocument replaces the named document wholesale (U2), or
	// inserts it when absent (upsert). Crash-atomic like InsertDocument.
	ReplaceDocument(ctx context.Context, name string, data []byte) error

	// DeleteDocument removes the named document (U3), failing if it does
	// not exist. Crash-atomic like InsertDocument.
	DeleteDocument(ctx context.Context, name string) error

	// Close releases the engine's pager resources (heap files, buffer
	// pool, WAL state). Double-Close is safe; operations after Close fail.
	Close() error
}

// EngineV1 is the pre-context engine interface, kept so integrations
// written against it keep compiling for one release. Wrap a V1
// implementation with AdaptV1 to use it where an Engine is expected.
//
// Deprecated: implement Engine (context-aware Load/Execute) instead.
type EngineV1 interface {
	Name() string
	Supports(c Class, s Size) error
	Load(db *Database) (LoadStats, error)
	BuildIndexes(specs []IndexSpec) error
	Execute(q QueryID, p Params) (Result, error)
	ColdReset()
	PageIO() int64
	Close() error
}

// AdaptV1 wraps a legacy EngineV1 into the context-aware Engine
// interface. The context is checked on entry to Load and Execute but is
// not observed while the wrapped call runs — V1 engines cannot be
// canceled mid-operation.
func AdaptV1(e EngineV1) Engine { return v1Engine{e} }

type v1Engine struct{ v1 EngineV1 }

func (a v1Engine) Name() string                         { return a.v1.Name() }
func (a v1Engine) Supports(c Class, s Size) error       { return a.v1.Supports(c, s) }
func (a v1Engine) BuildIndexes(specs []IndexSpec) error { return a.v1.BuildIndexes(specs) }
func (a v1Engine) ColdReset()                           { a.v1.ColdReset() }
func (a v1Engine) PageIO() int64                        { return a.v1.PageIO() }
func (a v1Engine) Close() error                         { return a.v1.Close() }

func (a v1Engine) Load(ctx context.Context, db *Database) (LoadStats, error) {
	if err := ctx.Err(); err != nil {
		return LoadStats{}, err
	}
	return a.v1.Load(db)
}

func (a v1Engine) Execute(ctx context.Context, q QueryID, p Params) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return a.v1.Execute(q, p)
}

// V1 engines predate the update workload; the adapter declines U1-U3.

func (a v1Engine) InsertDocument(context.Context, string, []byte) error {
	return fmt.Errorf("core: %s is a v1 engine: %w", a.v1.Name(), ErrReadOnly)
}

func (a v1Engine) ReplaceDocument(context.Context, string, []byte) error {
	return fmt.Errorf("core: %s is a v1 engine: %w", a.v1.Name(), ErrReadOnly)
}

func (a v1Engine) DeleteDocument(context.Context, string) error {
	return fmt.Errorf("core: %s is a v1 engine: %w", a.v1.Name(), ErrReadOnly)
}

// V1 returns the wrapped legacy engine.
func (a v1Engine) V1() EngineV1 { return a.v1 }
