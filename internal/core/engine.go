package core

import "errors"

// ErrUnsupported is returned by engines that cannot host a class/size
// combination, mirroring the blank cells of the paper's result tables
// (Xcolumn cannot store SD classes; Xcollection rejects Normal/Large SD
// databases due to its 1024-row decomposition limit).
var ErrUnsupported = errors.New("core: class/size combination not supported by this engine")

// ErrNoQuery is returned when a workload query is not defined for the
// engine's class (each class instantiates only a subset of Q1..Q20).
var ErrNoQuery = errors.New("core: query not defined for this class")

// Engine is a system under test. The four implementations model the four
// storage strategies of the paper: native (X-Hive), xcolumn (DB2 XML
// Extender XML column), xcollection (DB2 XML Extender XML collection), and
// sqlserver (SQL Server 2000 + SQLXML bulk load).
type Engine interface {
	// Name returns the row label used in the paper's tables,
	// e.g. "Xcolumn", "Xcollection", "SQL Server", "X-Hive".
	Name() string

	// Supports reports whether the engine can host the combination; it
	// returns nil or ErrUnsupported (possibly wrapped with a reason).
	Supports(c Class, s Size) error

	// Load bulk-loads a generated database, replacing any prior contents.
	// Validation against a schema is off, as in the paper's experiments.
	Load(db *Database) (LoadStats, error)

	// BuildIndexes creates the value indexes of paper Table 3 relevant to
	// the loaded class. Called after Load, exactly like the paper ("all
	// arbitrary indexes are created separately after bulk loading").
	BuildIndexes(specs []IndexSpec) error

	// Execute runs one workload query with bound parameters. Engines that
	// are not native XML stores run their own hand-translated relational
	// plans, as the paper's authors translated XQuery to SQL by hand.
	Execute(q QueryID, p Params) (Result, error)

	// ColdReset drops all cached pages so the next query is a cold run
	// ("from the time when a user submits a request ... to prevent caching
	// effects").
	ColdReset()

	// PageIO returns cumulative page I/O performed by the engine.
	PageIO() int64

	// Close releases resources.
	Close() error
}
