package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// PlanNode is one operator in a physical query plan. Engines return a
// tree of these from Explain; the wire layer serializes them, and the
// CLI prints them with Format. The string fields are stable, printable
// vocabulary — goldens under results/plans/ diff them — so changes to
// Op names are plan regressions, not refactors.
type PlanNode struct {
	// Op is the operator name: "scan", "index-probe", "doc-lookup",
	// "filter", "join", "sort", "limit", "construct", "aggregate",
	// "text-search", "result".
	Op string
	// Target names what the operator touches: a heap/table, an index
	// target ("item/@id"), or a document parameter.
	Target string
	// Detail is a free-form qualifier: the predicate, the join key,
	// the pushdown rule that produced this node.
	Detail string
	// EstPages and EstRows are the cost model's estimates. Zero means
	// "not costed" (pass-through operators).
	EstPages float64
	EstRows  float64
	Children []*PlanNode
}

// Format renders the plan tree one operator per line, children indented
// two spaces, costed operators suffixed with (cost=pages rows=n). The
// output is stable: it is what golden plan files store.
func (n *PlanNode) Format() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *PlanNode) format(b *strings.Builder, depth int) {
	if n == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.Op)
	if n.Target != "" {
		b.WriteString(" ")
		b.WriteString(n.Target)
	}
	if n.Detail != "" {
		b.WriteString(" [")
		b.WriteString(n.Detail)
		b.WriteString("]")
	}
	if n.EstPages != 0 || n.EstRows != 0 {
		fmt.Fprintf(b, " (cost=%.1f rows=%.0f)", n.EstPages, n.EstRows)
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		c.format(b, depth+1)
	}
}

// String implements fmt.Stringer.
func (n *PlanNode) String() string { return strings.TrimRight(n.Format(), "\n") }

// ErrNoExplain reports that an engine cannot produce a plan — legacy
// EngineV1 wrappers, and servers predating the OpExplain opcode. Match
// with errors.Is.
var ErrNoExplain = errors.New("engine does not support explain")

// Explainer is the optional extension to Engine: engines that plan
// queries expose the costed physical plan without executing it.
type Explainer interface {
	// Explain returns the physical plan Execute would run for (q, p).
	// The tree is a fresh copy the caller may mutate.
	Explain(ctx context.Context, q QueryID, p Params) (*PlanNode, error)
}

// Explain returns e's plan for (q, p) if the engine supports planning,
// and a wrapped ErrNoExplain otherwise. This is the graceful-degrade
// path for AdaptV1 wrappers: they never implement Explainer, so legacy
// engines answer with a typed error instead of panicking.
func Explain(ctx context.Context, e Engine, q QueryID, p Params) (*PlanNode, error) {
	if ex, ok := e.(Explainer); ok {
		return ex.Explain(ctx, q, p)
	}
	return nil, fmt.Errorf("core: %s: %w", e.Name(), ErrNoExplain)
}
