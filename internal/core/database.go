package core

// Doc is one serialized XML document of a benchmark database. Databases are
// exchanged between the generators and the engines in serialized form so
// that each engine pays its own parsing cost during bulk loading, exactly
// as the paper's systems did.
type Doc struct {
	// Name is the document file name, e.g. "dictionary.xml", "article42.xml",
	// "catalog.xml", "order17.xml", "Customer.xml".
	Name string
	// Data is the UTF-8 serialized XML.
	Data []byte
}

// Database is a generated XBench database instance: the set of documents for
// one class at one scale.
type Database struct {
	Class Class
	Size  Size
	Docs  []Doc
}

// Bytes returns the total serialized size of the database in bytes.
func (db *Database) Bytes() int {
	n := 0
	for _, d := range db.Docs {
		n += len(d.Data)
	}
	return n
}

// Instance returns the paper's instance naming, e.g. "DCMDN".
func (db *Database) Instance() string { return InstanceName(db.Class, db.Size) }

// LoadStats reports what a bulk load did. Engines fill it during Load.
type LoadStats struct {
	Documents int // documents ingested
	Rows      int // relational rows written (0 for the native engine)
	Nodes     int // XML nodes stored natively (0 for shredded engines)
	Bytes     int // input bytes consumed
	PageIO    int64
	// SkippedMixed counts mixed-content elements that could not be mapped
	// and were dropped (paper §3.1.3 item 3; SQL Server only).
	SkippedMixed int
}

// IndexSpec is one value index from paper Table 3, e.g. item/@id for DC/SD.
type IndexSpec struct {
	Class Class
	// Target is the element or attribute path the index covers, written the
	// way Table 3 writes it, e.g. "hw", "article/@id", "date_of_release".
	Target string
}

// Attribute reports whether the index target is an attribute (contains "@").
func (s IndexSpec) Attribute() bool {
	for i := 0; i < len(s.Target); i++ {
		if s.Target[i] == '@' {
			return true
		}
	}
	return false
}
